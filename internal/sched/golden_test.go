package sched

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestRunRecordGolden pins the persisted run-record shape: a scheduled
// deterministic sim job must serialize to exactly the committed golden
// JSON (WallTime and Workers zeroed — the two fields documented to
// vary with host conditions). A diff here means the wire format of the
// job store's run history changed; regenerate with -update when the
// change is intentional.
func TestRunRecordGolden(t *testing.T) {
	spec := engineSpec("acme")
	s, err := Open(Config{Dir: t.TempDir(), Exec: EngineExecutor{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	runs, err := s.Runs(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Report == nil {
		t.Fatalf("run history %+v", runs)
	}
	rec := runs[0]
	rec.Report.WallTime = 0
	rec.Report.Workers = 0

	got, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "run_record.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				break
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("run record diverges from %s at line %d (rerun with -update if intentional); got %d bytes, want %d",
			path, line, len(got), len(want))
	}
}
