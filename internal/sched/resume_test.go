package sched

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
)

// engineSpec is a small-but-real job: ~200 KB physical input over 16
// chunks on a 3-node incremental cluster, the same shape the engine's
// own fault suite uses.
func engineSpec(org string) JobSpec {
	return JobSpec{
		Org: org, User: "ops", Query: "clickcount",
		Platform: "inc-hash", Backend: "sim",
		DataBytes: 8e8, ChunkBytes: 48e6, Scale: "1/4096",
		Nodes: 3, Reducers: 2, Seed: 7,
	}
}

// directRun executes the spec exactly as cmd/onepass would.
func directRun(t *testing.T, spec JobSpec) *engine.Report {
	t.Helper()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	job, newQuery, err := BuildJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	job.Query = newQuery()
	rep, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestScheduledReportBitIdenticalToDirectRun is the acceptance tie
// between the service and the CLI: the Report a completed scheduled
// job persists in its run history must match a direct run of the same
// spec bit for bit, WallTime aside (the one field documented to vary
// with host conditions).
func TestScheduledReportBitIdenticalToDirectRun(t *testing.T) {
	spec := engineSpec("acme")
	direct := directRun(t, spec)

	s, err := Open(Config{Dir: t.TempDir(), Exec: EngineExecutor{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	runs, err := s.Runs(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Report == nil {
		t.Fatalf("run history %+v", runs)
	}
	scheduled := runs[0].Report

	direct.WallTime, scheduled.WallTime = 0, 0
	if !reflect.DeepEqual(direct, scheduled) {
		t.Fatalf("scheduled report differs from direct run: %s", engine.ReportDiff(direct, scheduled))
	}
}

// TestInterruptedRunResumesFromCheckpoints kills the scheduler while a
// run executes, reopens, and requires the resume attempt to recover
// through checkpointed reducer state: checkpoints taken, a node loss
// survived, and RecoveryReadBytes strictly below what the same
// interruption costs without checkpoints (the full-replay baseline).
func TestInterruptedRunResumesFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	spec := engineSpec("acme")

	stub := newStub()
	stub.gate = make(chan struct{})
	stub.started = make(chan string, 1)
	s, err := Open(Config{Dir: dir, Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started // mid-execution
	s.Abort()      // scheduler process dies

	s2, err := Open(Config{Dir: dir, Exec: EngineExecutor{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovery.ResumedRuns != 1 {
		t.Fatalf("recovery %+v, want 1 resumed run", s2.Recovery)
	}
	waitState(t, s2, j.ID, StateDone)
	runs, err := s2.Runs(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].State != StateInterrupted || !runs[1].Resumed {
		t.Fatalf("run history %+v", runs)
	}
	resumed := runs[1].Report
	if resumed == nil {
		t.Fatal("resumed run has no report")
	}
	if resumed.Checkpoints == 0 || resumed.CheckpointBytes == 0 {
		t.Fatalf("resume took no checkpoints: %d ckpts, %d bytes", resumed.Checkpoints, resumed.CheckpointBytes)
	}
	if resumed.NodesLost != 1 {
		t.Fatalf("NodesLost = %d, want the injected interruption", resumed.NodesLost)
	}
	if resumed.RecoveryReadBytes <= 0 {
		t.Fatal("RecoveryReadBytes = 0: no recovery happened")
	}

	// Answers match the never-interrupted run.
	clean := directRun(t, spec)
	if resumed.OutputRecords != clean.OutputRecords || resumed.OutputBytes != clean.OutputBytes {
		t.Fatalf("resumed answers differ: %d records / %d bytes, want %d / %d",
			resumed.OutputRecords, resumed.OutputBytes, clean.OutputRecords, clean.OutputBytes)
	}

	// Full-replay baseline: the same kill at the same instant with
	// checkpointing off re-reads the whole consumed shuffle; resuming
	// from the newest checkpoint must read strictly less.
	spec.Normalize()
	job, newQuery, err := BuildJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	job.Query = newQuery()
	mf := clean.MapFinishTime
	job.Faults.KillNodes = map[int]time.Duration{1: mf * 3 / 4}
	job.Faults.HeartbeatInterval = mf / 100
	job.Faults.HeartbeatTimeout = mf / 25
	bare, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if bare.RecoveryReadBytes == 0 {
		t.Fatal("baseline recovery read nothing; kill plan inert")
	}
	if resumed.RecoveryReadBytes >= bare.RecoveryReadBytes {
		t.Fatalf("RecoveryReadBytes = %d with checkpoints, %d full replay: resume saved nothing",
			resumed.RecoveryReadBytes, bare.RecoveryReadBytes)
	}
}
