package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/jobstore"
)

// Sentinel errors; serve maps them onto HTTP statuses the same way it
// maps the ingester's.
var (
	// ErrOverloaded sheds a submit when the org's queue is full.
	ErrOverloaded = errors.New("sched: org queue full")
	// ErrDraining refuses submits while the scheduler drains for shutdown.
	ErrDraining = errors.New("sched: draining")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("sched: no such job")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("sched: closed")
)

// Config configures Open.
type Config struct {
	// Dir is the job store directory (required).
	Dir string
	// Exec runs jobs; defaults to EngineExecutor.
	Exec Executor
	// DefaultLimits applies to orgs with no explicit limits row
	// (default: 2 concurrent, 64 queued).
	DefaultLimits Limits
	// Store tunes the embedded store (Dir is overridden by Dir above);
	// the zero value takes jobstore's defaults.
	Store jobstore.Config
	// Now is the cron clock (tests); defaults to time.Now.
	Now func() time.Time
}

func (cfg *Config) withDefaults() error {
	if cfg.Dir == "" {
		return errors.New("sched: Config.Dir is required")
	}
	if cfg.Exec == nil {
		cfg.Exec = EngineExecutor{}
	}
	if cfg.DefaultLimits.MaxConcurrent <= 0 {
		cfg.DefaultLimits.MaxConcurrent = 2
	}
	if cfg.DefaultLimits.MaxQueued <= 0 {
		cfg.DefaultLimits.MaxQueued = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cfg.Store.Dir = cfg.Dir
	return nil
}

// queueEntry is one admitted, unstarted run.
type queueEntry struct {
	jobID  string
	runID  uint64
	resume *ResumeInfo
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// Jobs is the number of persisted jobs loaded.
	Jobs int `json:"jobs"`
	// RequeuedRuns were pending at the crash: admitted (acknowledged to
	// the client) but not yet started. They re-enter the queue as-is.
	RequeuedRuns int `json:"requeued_runs"`
	// ResumedRuns were mid-execution at the crash: the old run is
	// marked interrupted and a fresh attempt with Resumed=true enters
	// the queue, to be recovered through checkpointed reducer state.
	ResumedRuns int `json:"resumed_runs"`
	// Store is the embedded store's own recovery report.
	Store jobstore.RecoveryInfo `json:"store"`
}

// Metrics snapshots the scheduler counters.
type Metrics struct {
	Jobs      int              `json:"jobs"`
	Queued    int              `json:"queued"`
	Running   int              `json:"running"`
	Submitted int64            `json:"submitted"`
	Completed int64            `json:"completed"`
	Failed    int64            `json:"failed"`
	Canceled  int64            `json:"canceled"`
	Shed      int64            `json:"shed"`
	CronTicks int64            `json:"cron_ticks"`
	Recovery  RecoveryInfo     `json:"recovery"`
	Store     jobstore.Metrics `json:"store"`
	Draining  bool             `json:"draining"`
}

// Scheduler admits, queues, executes, and records jobs. All public
// methods are safe for concurrent use.
type Scheduler struct {
	cfg   Config
	store *jobstore.Store

	mu       sync.Mutex
	jobs     map[string]*Job
	queues   map[string][]queueEntry
	running  map[string]int                // org → executing runs
	cancels  map[string]context.CancelFunc // jobID → running run's cancel
	active   map[string]uint64             // jobID → running run's id
	timers   map[string]*time.Timer        // jobID → next cron fire
	limits   map[string]Limits
	draining bool
	closed   bool

	submitted, completed, failed, canceled, shed, cronTicks int64

	wg sync.WaitGroup

	// Recovery reports what Open did; immutable afterwards.
	Recovery RecoveryInfo
}

// Open recovers the job store, requeues acknowledged-but-unstarted
// runs, converts runs lost mid-execution into resume attempts, rearms
// cron schedules, and starts dispatching.
func Open(cfg Config) (*Scheduler, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	st, err := jobstore.Open(cfg.Store)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		store:   st,
		jobs:    make(map[string]*Job),
		queues:  make(map[string][]queueEntry),
		running: make(map[string]int),
		cancels: make(map[string]context.CancelFunc),
		active:  make(map[string]uint64),
		timers:  make(map[string]*time.Timer),
		limits:  make(map[string]Limits),
	}
	s.Recovery.Store = st.Recovery
	if err := s.recover(); err != nil {
		st.Close()
		return nil, err
	}
	s.mu.Lock()
	for org := range s.queues {
		s.dispatchLocked(org)
	}
	s.mu.Unlock()
	return s, nil
}

// recover loads persisted state and repairs interrupted work.
func (s *Scheduler) recover() error {
	type lostRun struct{ run Run }
	var lost []lostRun
	err := s.store.View(func(tx *jobstore.Tx) error {
		if err := forEachJob(tx, "", func(j *Job) error {
			s.jobs[j.ID] = j
			return nil
		}); err != nil {
			return err
		}
		tx.Bucket(bucketLimits).ForEach(func(k, v []byte) error {
			s.limits[string(k)] = getLimits(tx, string(k), s.cfg.DefaultLimits)
			return nil
		})
		for id := range s.jobs {
			if err := forEachRun(tx, id, func(r *Run) error {
				switch r.State {
				case StatePending:
					s.queues[r.Org] = append(s.queues[r.Org], queueEntry{
						jobID: r.JobID, runID: r.ID, resume: resumeOf(r),
					})
					s.Recovery.RequeuedRuns++
				case StateRunning:
					lost = append(lost, lostRun{*r})
				}
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.Recovery.Jobs = len(s.jobs)

	if len(lost) > 0 {
		// One transaction repairs all interrupted runs: old attempts
		// flip to interrupted, fresh resume attempts are minted.
		err := s.store.Update(func(tx *jobstore.Tx) error {
			for _, l := range lost {
				old := l.run
				old.State = StateInterrupted
				if err := putRun(tx, &old); err != nil {
					return err
				}
				id, err := nextRunID(tx, old.Org)
				if err != nil {
					return err
				}
				next := Run{
					Org: old.Org, JobID: old.JobID, ID: id,
					Attempt: old.Attempt + 1, Resumed: true,
					State: StatePending,
				}
				if err := putRun(tx, &next); err != nil {
					return err
				}
				s.queues[old.Org] = append(s.queues[old.Org], queueEntry{
					jobID: old.JobID, runID: id,
					resume: &ResumeInfo{PrevRunID: old.ID, Attempt: next.Attempt},
				})
				s.Recovery.ResumedRuns++
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Queued one-shot jobs with runs back in the queue stay queued;
	// recurring jobs rearm their schedules.
	for _, j := range s.jobs {
		if j.Spec.Cron != "" && !terminal(j.State) {
			s.armCronLocked(j)
		}
	}
	return nil
}

// resumeOf rebuilds the ResumeInfo a pending run carried, if any.
func resumeOf(r *Run) *ResumeInfo {
	if !r.Resumed {
		return nil
	}
	return &ResumeInfo{Attempt: r.Attempt}
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

func (s *Scheduler) limitsFor(org string) Limits {
	if l, ok := s.limits[org]; ok {
		return l
	}
	return s.cfg.DefaultLimits
}

// Submit validates, persists, and queues a job. When Submit returns
// nil, the job and its first run are fsynced in the store: a crash at
// any later instant cannot lose them. Recurring jobs (Spec.Cron) are
// admitted in state active and mint runs at each schedule fire
// instead of immediately.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.draining {
		return nil, ErrDraining
	}
	lim := s.limitsFor(spec.Org)
	if len(s.queues[spec.Org]) >= lim.MaxQueued {
		s.shed++
		return nil, fmt.Errorf("%w: %d runs queued for org %s", ErrOverloaded, len(s.queues[spec.Org]), spec.Org)
	}

	job := &Job{Spec: spec, Created: s.cfg.Now().UTC().Format(time.RFC3339)}
	var firstRun *Run
	err := s.store.Update(func(tx *jobstore.Tx) error {
		id, err := nextJobID(tx)
		if err != nil {
			return err
		}
		job.ID = id
		if spec.Cron != "" {
			job.State = StateActive
			return putJob(tx, job)
		}
		job.State = StateQueued
		runID, err := nextRunID(tx, spec.Org)
		if err != nil {
			return err
		}
		firstRun = &Run{Org: spec.Org, JobID: id, ID: runID, Attempt: 1, State: StatePending}
		if err := putJob(tx, job); err != nil {
			return err
		}
		return putRun(tx, firstRun)
	})
	if err != nil {
		return nil, err
	}

	s.jobs[job.ID] = job
	s.submitted++
	if spec.Cron != "" {
		s.armCronLocked(job)
	} else {
		s.queues[spec.Org] = append(s.queues[spec.Org], queueEntry{jobID: job.ID, runID: firstRun.ID})
		s.dispatchLocked(spec.Org)
	}
	out := *job
	return &out, nil
}

// Get returns a copy of the job record.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	out := *j
	return &out, nil
}

// List returns copies of all jobs, or only org's when org is
// non-empty, sorted by id.
func (s *Scheduler) List(org string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if org == "" || j.Spec.Org == org {
			c := *j
			out = append(out, &c)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Runs returns the job's run history in run-id order.
func (s *Scheduler) Runs(jobID string) ([]*Run, error) {
	s.mu.Lock()
	if _, ok := s.jobs[jobID]; !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	s.mu.Unlock()
	var out []*Run
	err := s.store.View(func(tx *jobstore.Tx) error {
		return forEachRun(tx, jobID, func(r *Run) error {
			out = append(out, r)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

// Cancel moves a job to canceled: queued runs cancel immediately, a
// running run's context is canceled and its result recorded as
// canceled, recurring schedules disarm. Cancel is idempotent — a
// second call (or canceling an already-terminal job) returns the
// record unchanged with no error.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if terminal(j.State) {
		out := *j
		return &out, nil
	}

	var canceledRuns []queueEntry
	q := s.queues[j.Spec.Org][:0]
	for _, e := range s.queues[j.Spec.Org] {
		if e.jobID == id {
			canceledRuns = append(canceledRuns, e)
		} else {
			q = append(q, e)
		}
	}
	s.queues[j.Spec.Org] = q

	prev := j.State
	j.State = StateCanceled
	err := s.store.Update(func(tx *jobstore.Tx) error {
		for _, e := range canceledRuns {
			if err := markRun(tx, id, e.runID, func(r *Run) {
				r.State = StateCanceled
			}); err != nil {
				return err
			}
		}
		// A running run is recorded canceled in the same transaction
		// that cancels the job, so "job terminal ⇒ runs terminal"
		// holds the moment Cancel returns; the executing goroutine's
		// later completion write leaves terminal records untouched.
		if runID, ok := s.active[id]; ok {
			if err := markRun(tx, id, runID, func(r *Run) {
				r.State = StateCanceled
			}); err != nil {
				return err
			}
		}
		return putJob(tx, j)
	})
	if err != nil {
		j.State = prev
		return nil, err
	}
	s.canceled++

	if t, ok := s.timers[id]; ok {
		t.Stop()
		delete(s.timers, id)
	}
	if cancel, ok := s.cancels[id]; ok {
		cancel() // unblocks the executing goroutine; the run record is already canceled
	}
	out := *j
	return &out, nil
}

// markRun rewrites one persisted run record through fn.
func markRun(tx *jobstore.Tx, jobID string, runID uint64, fn func(*Run)) error {
	var found *Run
	if err := forEachRun(tx, jobID, func(r *Run) error {
		if r.ID == runID {
			found = r
		}
		return nil
	}); err != nil {
		return err
	}
	if found == nil {
		return fmt.Errorf("sched: run %d of %s not persisted", runID, jobID)
	}
	fn(found)
	return putRun(tx, found)
}

// Limits returns org's effective admission policy.
func (s *Scheduler) Limits(org string) Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limitsFor(org)
}

// SetLimits persists org's admission policy and re-dispatches under
// the new concurrency cap.
func (s *Scheduler) SetLimits(org string, l Limits) error {
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = s.cfg.DefaultLimits.MaxConcurrent
	}
	if l.MaxQueued <= 0 {
		l.MaxQueued = s.cfg.DefaultLimits.MaxQueued
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.store.Update(func(tx *jobstore.Tx) error {
		return putLimits(tx, org, l)
	}); err != nil {
		return err
	}
	s.limits[org] = l
	s.dispatchLocked(org)
	return nil
}

// dispatchLocked starts queued runs for org while its concurrency
// limit allows. Callers hold s.mu.
func (s *Scheduler) dispatchLocked(org string) {
	if s.closed {
		return
	}
	lim := s.limitsFor(org)
	for s.running[org] < lim.MaxConcurrent && len(s.queues[org]) > 0 {
		e := s.queues[org][0]
		s.queues[org] = s.queues[org][1:]
		j, ok := s.jobs[e.jobID]
		if !ok || terminal(j.State) {
			continue
		}
		if err := s.store.Update(func(tx *jobstore.Tx) error {
			if err := markRun(tx, e.jobID, e.runID, func(r *Run) {
				r.State = StateRunning
			}); err != nil {
				return err
			}
			if j.State == StateQueued {
				j.State = StateRunning
				return putJob(tx, j)
			}
			return nil
		}); err != nil {
			// Store failure (wedged or closed): leave the run pending on
			// disk; recovery requeues it on the next boot.
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.cancels[e.jobID] = cancel
		s.active[e.jobID] = e.runID
		s.running[org]++
		s.wg.Add(1)
		go s.execute(ctx, cancel, j.Spec, e)
	}
}

// execute runs one admitted run to completion and records the result.
func (s *Scheduler) execute(ctx context.Context, cancel context.CancelFunc, spec JobSpec, e queueEntry) {
	defer s.wg.Done()
	defer cancel()
	rep, runErr := s.cfg.Exec.Run(ctx, spec, e.resume)

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, e.jobID)
	delete(s.active, e.jobID)
	s.running[spec.Org]--

	j := s.jobs[e.jobID]
	state := StateDone
	errMsg := ""
	switch {
	case j != nil && j.State == StateCanceled, errors.Is(runErr, context.Canceled):
		state = StateCanceled
		rep = nil
	case runErr != nil:
		state = StateFailed
		errMsg = runErr.Error()
	}

	err := s.store.Update(func(tx *jobstore.Tx) error {
		if err := markRun(tx, e.jobID, e.runID, func(r *Run) {
			// Cancel may already have recorded this run as canceled in
			// the transaction that canceled the job; a terminal record
			// is never rewritten.
			if terminal(r.State) {
				return
			}
			r.State = state
			r.Error = errMsg
			r.Report = rep
		}); err != nil {
			return err
		}
		if j == nil {
			return nil
		}
		j.Runs++
		j.LastRun = e.runID
		if !terminal(j.State) && j.Spec.Cron == "" {
			j.State = state
		}
		return putJob(tx, j)
	})
	if err != nil {
		// Wedged or closed store: the run stays "running" on disk and
		// the next boot resumes it; nothing more to do here.
		return
	}
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateCanceled:
		s.canceled++
	}
	s.dispatchLocked(spec.Org)
}

// armCronLocked schedules the job's next fire. Callers hold s.mu.
func (s *Scheduler) armCronLocked(j *Job) {
	sched, err := ParseSchedule(j.Spec.Cron)
	if err != nil {
		return // validated at submit; unreachable for persisted jobs
	}
	now := s.cfg.Now()
	next := sched.Next(now)
	if next.IsZero() {
		return
	}
	id := j.ID
	s.timers[id] = time.AfterFunc(next.Sub(now), func() { s.cronFire(id) })
}

// cronFire mints and queues one run of a recurring job, then rearms.
func (s *Scheduler) cronFire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || s.closed || terminal(j.State) {
		return
	}
	delete(s.timers, id)
	defer s.armCronLocked(j)
	s.cronTicks++

	lim := s.limitsFor(j.Spec.Org)
	if len(s.queues[j.Spec.Org]) >= lim.MaxQueued {
		s.shed++ // skip this fire rather than queue without bound
		return
	}
	var run *Run
	err := s.store.Update(func(tx *jobstore.Tx) error {
		runID, err := nextRunID(tx, j.Spec.Org)
		if err != nil {
			return err
		}
		run = &Run{Org: j.Spec.Org, JobID: id, ID: runID, Attempt: 1, State: StatePending}
		return putRun(tx, run)
	})
	if err != nil {
		return
	}
	s.queues[j.Spec.Org] = append(s.queues[j.Spec.Org], queueEntry{jobID: id, runID: run.ID})
	s.dispatchLocked(j.Spec.Org)
}

// Drain stops admitting new submits (ErrDraining), disarms cron
// schedules, and waits — up to ctx — for queued and running work to
// finish. It does not close the store; call Close after.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels running work, waits for it to unwind, and closes the
// store cleanly. For a graceful shutdown call Drain first.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.store.Close()
}

// Abort simulates the scheduler process dying (tests): the store is
// cut down as by kill -9 and nothing is waited for.
func (s *Scheduler) Abort() {
	s.mu.Lock()
	s.closed = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
	s.mu.Unlock()
	s.store.Abort()
}

// Metrics snapshots the counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	queued := 0
	for _, q := range s.queues {
		queued += len(q)
	}
	running := 0
	for _, n := range s.running {
		running += n
	}
	m := Metrics{
		Jobs:      len(s.jobs),
		Queued:    queued,
		Running:   running,
		Submitted: s.submitted,
		Completed: s.completed,
		Failed:    s.failed,
		Canceled:  s.canceled,
		Shed:      s.shed,
		CronTicks: s.cronTicks,
		Recovery:  s.Recovery,
		Draining:  s.draining,
	}
	s.mu.Unlock()
	m.Store = s.store.Metrics()
	return m
}
