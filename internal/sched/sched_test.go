package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// stubExec is an instrumented executor: it records concurrency per
// org (for the limit invariant), resume hand-offs, and can gate or
// fail runs on demand.
type stubExec struct {
	mu        sync.Mutex
	cur, peak map[string]int
	resumes   []ResumeInfo
	gate      chan struct{} // non-nil: runs block until the gate closes
	started   chan string   // non-nil: receives org as each run starts
	delay     time.Duration
	failFor   map[string]error // query → error
}

func newStub() *stubExec {
	return &stubExec{cur: map[string]int{}, peak: map[string]int{}}
}

func (e *stubExec) Run(ctx context.Context, spec JobSpec, resume *ResumeInfo) (*engine.Report, error) {
	e.mu.Lock()
	e.cur[spec.Org]++
	if e.cur[spec.Org] > e.peak[spec.Org] {
		e.peak[spec.Org] = e.cur[spec.Org]
	}
	if resume != nil {
		e.resumes = append(e.resumes, *resume)
	}
	gate, started, delay := e.gate, e.started, e.delay
	failErr := e.failFor[spec.Query]
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.cur[spec.Org]--
		e.mu.Unlock()
	}()

	if started != nil {
		started <- spec.Org
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &engine.Report{Query: spec.Query, Platform: spec.Platform, OutputRecords: 1}, nil
}

func (e *stubExec) peakFor(org string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peak[org]
}

func testSpec(org string) JobSpec {
	return JobSpec{Org: org, User: "u1", Query: "clickcount", Nodes: 3, Reducers: 2}
}

// waitState polls until the job reaches want, or fails the test.
func waitState(t *testing.T, s *Scheduler, id, want string) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if j.State == want {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := s.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, j.State, want)
	return nil
}

func TestSubmitRunsToCompletion(t *testing.T) {
	stub := newStub()
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State == "" {
		t.Fatalf("submit returned incomplete job: %+v", j)
	}
	waitState(t, s, j.ID, StateDone)
	runs, err := s.Runs(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	r := runs[0]
	if r.State != StateDone || r.Attempt != 1 || r.Resumed || r.Report == nil {
		t.Fatalf("run record %+v", r)
	}
	if r.Report.Query != "clickcount" {
		t.Fatalf("report query %q", r.Report.Query)
	}
	if got, _ := s.Get(j.ID); got.Runs != 1 || got.LastRun != r.ID {
		t.Fatalf("job bookkeeping %+v", got)
	}
}

func TestPerOrgConcurrencyLimit(t *testing.T) {
	stub := newStub()
	stub.gate = make(chan struct{})
	stub.started = make(chan string, 16)
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub,
		DefaultLimits: Limits{MaxConcurrent: 2, MaxQueued: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(testSpec("acme"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Exactly two runs may start while the gate holds.
	<-stub.started
	<-stub.started
	select {
	case org := <-stub.started:
		t.Fatalf("third run for %s started past MaxConcurrent=2", org)
	case <-time.After(50 * time.Millisecond):
	}
	m := s.Metrics()
	if m.Running != 2 || m.Queued != 3 {
		t.Fatalf("running=%d queued=%d, want 2/3", m.Running, m.Queued)
	}
	close(stub.gate)
	for range ids[2:] {
		<-stub.started
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	if p := stub.peakFor("acme"); p > 2 {
		t.Fatalf("peak concurrency %d exceeded limit 2", p)
	}
}

func TestLimitsAreIndependentPerOrg(t *testing.T) {
	stub := newStub()
	stub.gate = make(chan struct{})
	stub.started = make(chan string, 16)
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub,
		DefaultLimits: Limits{MaxConcurrent: 1, MaxQueued: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetLimits("big", Limits{MaxConcurrent: 3, MaxQueued: 16}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(testSpec("big")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(testSpec("small")); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		counts[<-stub.started]++
	}
	if counts["big"] != 3 || counts["small"] != 1 {
		t.Fatalf("started %v, want big=3 small=1", counts)
	}
	close(stub.gate)
	if got := s.Limits("big"); got.MaxConcurrent != 3 {
		t.Fatalf("Limits(big) = %+v", got)
	}
	if got := s.Limits("absent"); got.MaxConcurrent != 1 {
		t.Fatalf("Limits(absent) = %+v, want default", got)
	}
}

func TestRunIDsStrictlyMonotonicPerOrg(t *testing.T) {
	stub := newStub()
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orgs := []string{"a", "b"}
	jobsByOrg := map[string][]string{}
	for i := 0; i < 6; i++ {
		org := orgs[i%2]
		j, err := s.Submit(testSpec(org))
		if err != nil {
			t.Fatal(err)
		}
		jobsByOrg[org] = append(jobsByOrg[org], j.ID)
	}
	for _, org := range orgs {
		var idsSeen []uint64
		for _, jid := range jobsByOrg[org] {
			waitState(t, s, jid, StateDone)
			runs, err := s.Runs(jid)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range runs {
				idsSeen = append(idsSeen, r.ID)
			}
		}
		// Submit order is the mint order within one org, so ids must be
		// exactly 1..n in submission sequence.
		for i, id := range idsSeen {
			if id != uint64(i+1) {
				t.Fatalf("org %s run ids %v: want strictly monotonic 1..%d", org, idsSeen, len(idsSeen))
			}
		}
	}
}

func TestCancelQueuedAndRunningIsIdempotent(t *testing.T) {
	stub := newStub()
	stub.gate = make(chan struct{})
	stub.started = make(chan string, 16)
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub,
		DefaultLimits: Limits{MaxConcurrent: 1, MaxQueued: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	running, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started

	// Cancel the queued job: immediate, no execution.
	j1, err := s.Cancel(queued.ID)
	if err != nil || j1.State != StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", j1, err)
	}
	j2, err := s.Cancel(queued.ID)
	if err != nil || j2.State != StateCanceled {
		t.Fatalf("second cancel not idempotent: %+v, %v", j2, err)
	}
	runs, _ := s.Runs(queued.ID)
	if len(runs) != 1 || runs[0].State != StateCanceled {
		t.Fatalf("queued job's run record %+v", runs)
	}

	// Cancel the running job: its context aborts the executor and the
	// run records canceled.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateCanceled)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runs, _ = s.Runs(running.ID)
		if len(runs) == 1 && runs[0].State == StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job's run record %+v", runs)
		}
		time.Sleep(time.Millisecond)
	}
	if runs[0].Report != nil {
		t.Fatalf("canceled run kept a report: %+v", runs[0])
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
	close(stub.gate)
}

func TestFailedRunRecordsError(t *testing.T) {
	stub := newStub()
	stub.failFor = map[string]error{"pagefreq": errors.New("synthetic failure")}
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := testSpec("acme")
	spec.Query = "pagefreq"
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateFailed)
	runs, _ := s.Runs(j.ID)
	if len(runs) != 1 || runs[0].State != StateFailed || runs[0].Error == "" {
		t.Fatalf("failed run record %+v", runs[0])
	}
}

func TestOverloadSheds(t *testing.T) {
	stub := newStub()
	stub.gate = make(chan struct{})
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub,
		DefaultLimits: Limits{MaxConcurrent: 1, MaxQueued: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// One runs, two queue, the fourth sheds.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(testSpec("acme")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(testSpec("acme")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past MaxQueued: %v, want ErrOverloaded", err)
	}
	// Another org is unaffected.
	if _, err := s.Submit(testSpec("other")); err != nil {
		t.Fatalf("other org shed too: %v", err)
	}
	if m := s.Metrics(); m.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed)
	}
	close(stub.gate)
}

func TestDrainRefusesSubmitsAndFinishesWork(t *testing.T) {
	stub := newStub()
	stub.delay = 20 * time.Millisecond
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(testSpec("acme")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	// The admitted run finished during the drain.
	if got, _ := s.Get(j.ID); got.State != StateDone {
		t.Fatalf("admitted job state %q after drain, want done", got.State)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRequeuesPendingAndResumesRunning(t *testing.T) {
	dir := t.TempDir()
	stub := newStub()
	stub.gate = make(chan struct{})
	stub.started = make(chan string, 16)
	s, err := Open(Config{Dir: dir, Exec: stub,
		DefaultLimits: Limits{MaxConcurrent: 1, MaxQueued: 16}})
	if err != nil {
		t.Fatal(err)
	}
	runningJob, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	queuedJob, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started // first run is mid-execution
	s.Abort()      // process dies

	stub2 := newStub()
	s2, err := Open(Config{Dir: dir, Exec: stub2,
		DefaultLimits: Limits{MaxConcurrent: 1, MaxQueued: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovery.ResumedRuns != 1 || s2.Recovery.RequeuedRuns != 1 {
		t.Fatalf("recovery %+v, want 1 resumed + 1 requeued", s2.Recovery)
	}

	// The interrupted run resumes (executor told to recover), the
	// acknowledged-but-unstarted one just runs; nothing is lost.
	waitState(t, s2, runningJob.ID, StateDone)
	waitState(t, s2, queuedJob.ID, StateDone)

	runs, err := s2.Runs(runningJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("interrupted job has %d runs, want interrupted + resumed", len(runs))
	}
	if runs[0].State != StateInterrupted {
		t.Fatalf("first run state %q, want interrupted", runs[0].State)
	}
	if !runs[1].Resumed || runs[1].Attempt != 2 || runs[1].State != StateDone {
		t.Fatalf("resume attempt %+v", runs[1])
	}
	if runs[1].ID <= runs[0].ID {
		t.Fatalf("resume run id %d not monotonic past %d", runs[1].ID, runs[0].ID)
	}
	stub2.mu.Lock()
	resumes := append([]ResumeInfo(nil), stub2.resumes...)
	stub2.mu.Unlock()
	if len(resumes) != 1 || resumes[0].PrevRunID != runs[0].ID || resumes[0].Attempt != 2 {
		t.Fatalf("executor resume hand-off %+v", resumes)
	}
}

func TestCronJobRecurs(t *testing.T) {
	stub := newStub()
	s, err := Open(Config{Dir: t.TempDir(), Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := testSpec("acme")
	spec.Cron = "@every 30ms"
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateActive {
		t.Fatalf("recurring job state %q, want active", j.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runs, err := s.Runs(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		doneRuns := 0
		for _, r := range runs {
			if r.State == StateDone {
				doneRuns++
			}
		}
		if doneRuns >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d completed runs after deadline", doneRuns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Cancel disarms the schedule; the run count stops growing.
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	runsAt, _ := s.Runs(j.ID)
	time.Sleep(100 * time.Millisecond)
	runsAfter, _ := s.Runs(j.ID)
	if len(runsAfter) > len(runsAt)+1 { // one in-flight fire may land
		t.Fatalf("cron kept minting after cancel: %d → %d runs", len(runsAt), len(runsAfter))
	}
}

func TestCronSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	stub := newStub()
	s, err := Open(Config{Dir: dir, Exec: stub})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("acme")
	spec.Cron = "@every 30ms"
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	s.Abort()

	s2, err := Open(Config{Dir: dir, Exec: newStub()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	before, _ := s2.Runs(j.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runs, _ := s2.Runs(j.ID)
		if len(runs) > len(before) {
			break // schedule rearmed after restart
		}
		if time.Now().After(deadline) {
			t.Fatal("recurring job never fired after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Exec: newStub()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []JobSpec{
		{Query: "clickcount"},                          // no org
		{Org: "a", Query: "nope"},                      // bad query
		{Org: "a", Query: "clickcount", Platform: "x"}, // bad platform
		{Org: "a", Query: "clickcount", Backend: "x"},  // bad backend
		{Org: "a", Query: "clickcount", Scale: "x"},    // bad scale
		{Org: "a", Query: "clickcount", Cron: "x"},     // bad cron
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec %+v admitted", i, spec)
		}
	}
	if m := s.Metrics(); m.Submitted != 0 {
		t.Fatalf("invalid submits counted: %+v", m)
	}
}

func TestMetricsShape(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Exec: newStub()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(testSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	m := s.Metrics()
	if m.Submitted != 1 || m.Completed != 1 || m.Jobs != 1 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Store.NextTx < 2 {
		t.Fatalf("store metrics missing: %+v", m.Store)
	}
}

func TestListByOrg(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Exec: newStub()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		org := "a"
		if i%2 == 1 {
			org = "b"
		}
		if _, err := s.Submit(testSpec(org)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.List("a")); got != 2 {
		t.Fatalf("List(a) = %d jobs, want 2", got)
	}
	if got := len(s.List("")); got != 4 {
		t.Fatalf("List() = %d jobs, want 4", got)
	}
	all := s.List("")
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("List not sorted: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}
