// Package sched is the durable multi-tenant job scheduler: org-scoped
// submit/cancel/list/get plus cron-style recurring jobs, executed on
// either backend (-backend=sim|real) under per-org concurrency
// limits, with every job, run, and limit persisted through
// internal/jobstore so an acknowledged submit survives kill -9 and an
// interrupted run resumes — through the PR 2 checkpointed reducer
// state — on the next boot.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
)

// Duration marshals as a human-readable duration string ("2m30s") and
// accepts either that form or integer nanoseconds on the way in, so
// API payloads stay readable in curl examples.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// JobSpec is the serializable description of one job: everything the
// executor needs to rebuild the engine.JobSpec deterministically.
// Zero values take the defaults noted per field (applied by
// Normalize); Seed makes the synthetic workload — and with it every
// answer-stable Report field on the sim backend — reproducible.
type JobSpec struct {
	// Org is the tenant (required); User attributes the submit.
	Org  string `json:"org"`
	User string `json:"user,omitempty"`
	// Name is a human label; defaults to the query name.
	Name string `json:"name,omitempty"`

	// Query is one of sessionization|clickcount|frequsers|pagefreq|trigram.
	Query string `json:"query"`
	// Platform is one of sm|hop|mr-hash|inc-hash|dinc-hash (default inc-hash).
	Platform string `json:"platform,omitempty"`
	// Backend is sim (discrete-event, default) or real (goroutines).
	Backend string `json:"backend,omitempty"`

	// DataBytes is the logical input size (default 1e9); ChunkBytes the
	// logical chunk size (default 64e6); Scale the physical:logical
	// ratio, e.g. "1/4096" (the default).
	DataBytes  float64 `json:"data_bytes,omitempty"`
	ChunkBytes float64 `json:"chunk_bytes,omitempty"`
	Scale      string  `json:"scale,omitempty"`

	// Nodes and Reducers shrink the paper cluster (0 = paper defaults).
	Nodes    int `json:"nodes,omitempty"`
	Reducers int `json:"reducers,omitempty"`

	// StateBytes sizes sessionization state (default 512); Users the
	// synthetic user population (default 400).
	StateBytes int   `json:"state_bytes,omitempty"`
	Users      int   `json:"users,omitempty"`
	Seed       int64 `json:"seed,omitempty"` // default 42

	// Workers sizes the real backend's task pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// CheckpointEvery enables periodic reducer-state checkpoints —
	// required for an interrupted run to resume rather than restart.
	CheckpointEvery Duration `json:"checkpoint_every,omitempty"`
	// NodeCombine is off|on|auto (default off); AggFanIn the
	// hierarchical aggregation fan-in (0 = per-node only).
	NodeCombine string `json:"node_combine,omitempty"`
	AggFanIn    int    `json:"agg_fanin,omitempty"`

	// Cron makes the job recurring: "@every 5m" or a 5-field cron
	// expression ("*/10 * * * *"). Empty = one-shot.
	Cron string `json:"cron,omitempty"`
}

// Known spec vocabularies.
var (
	// Queries lists the standard query names Validate accepts.
	Queries = []string{"sessionization", "clickcount", "frequsers", "pagefreq", "trigram"}
	// Platforms lists the platform names Validate accepts.
	Platforms = []string{"sm", "hop", "mr-hash", "inc-hash", "dinc-hash"}
)

// Normalize fills defaulted fields in place.
func (s *JobSpec) Normalize() {
	if s.Platform == "" {
		s.Platform = "inc-hash"
	}
	if s.Backend == "" {
		s.Backend = "sim"
	}
	if s.DataBytes == 0 {
		s.DataBytes = 1e9
	}
	if s.ChunkBytes == 0 {
		s.ChunkBytes = 64e6
	}
	if s.Scale == "" {
		s.Scale = "1/4096"
	}
	if s.StateBytes == 0 {
		s.StateBytes = 512
	}
	if s.Users == 0 {
		s.Users = 400
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.NodeCombine == "" {
		s.NodeCombine = "off"
	}
	if s.Name == "" {
		s.Name = s.Query
	}
}

// Validate reports the first problem with a normalized spec.
func (s *JobSpec) Validate() error {
	if s.Org == "" {
		return errors.New("spec: org is required")
	}
	if !contains(Queries, s.Query) {
		return fmt.Errorf("spec: unknown query %q (want one of %s)", s.Query, strings.Join(Queries, "|"))
	}
	if _, err := ParsePlatform(s.Platform); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.Backend != "sim" && s.Backend != "real" {
		return fmt.Errorf("spec: unknown backend %q (want sim or real)", s.Backend)
	}
	if _, err := ParseScale(s.Scale); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.DataBytes <= 0 || s.ChunkBytes <= 0 {
		return fmt.Errorf("spec: data_bytes and chunk_bytes must be positive")
	}
	if s.Nodes < 0 || s.Reducers < 0 || s.AggFanIn < 0 {
		return fmt.Errorf("spec: nodes, reducers, and agg_fanin must be non-negative")
	}
	if _, err := engine.ParseNodeCombineMode(s.NodeCombine); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("spec: checkpoint_every must be non-negative")
	}
	if s.Cron != "" {
		if _, err := ParseSchedule(s.Cron); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	return nil
}

func contains(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// ParsePlatform maps a platform name to the engine constant.
func ParsePlatform(s string) (engine.Platform, error) {
	switch strings.ToLower(s) {
	case "sm", "sortmerge", "1-pass-sm":
		return engine.SortMerge, nil
	case "hop":
		return engine.HOP, nil
	case "mr-hash", "mrhash":
		return engine.MRHash, nil
	case "inc-hash", "inchash":
		return engine.INCHash, nil
	case "dinc-hash", "dinchash":
		return engine.DINCHash, nil
	}
	return 0, fmt.Errorf("unknown platform %q", s)
}

// ParseScale parses "1/4096" or a bare float.
func ParseScale(s string) (float64, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseFloat(strings.TrimSpace(num), 64)
		d, err2 := strconv.ParseFloat(strings.TrimSpace(den), 64)
		if err1 != nil || err2 != nil || d == 0 {
			return 0, fmt.Errorf("bad scale %q", s)
		}
		return n / d, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad scale %q", s)
	}
	return v, nil
}

// Job and run lifecycle states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateActive      = "active"      // recurring job between runs
	StatePending     = "pending"     // run admitted, not yet started
	StateInterrupted = "interrupted" // run cut down by a scheduler crash
)

// Job is the persisted job record.
type Job struct {
	ID      string  `json:"id"`
	Spec    JobSpec `json:"spec"`
	State   string  `json:"state"`
	Created string  `json:"created,omitempty"` // RFC 3339, informational
	Runs    int64   `json:"runs"`              // runs started so far
	LastRun uint64  `json:"last_run,omitempty"`
}

// Run is the persisted run record; Report is the engine's run report,
// the profile row ROADMAP item 4's self-tuner will learn from.
type Run struct {
	Org     string         `json:"org"`
	JobID   string         `json:"job_id"`
	ID      uint64         `json:"id"` // strictly monotonic per org
	Attempt int            `json:"attempt"`
	Resumed bool           `json:"resumed,omitempty"`
	State   string         `json:"state"`
	Error   string         `json:"error,omitempty"`
	Report  *engine.Report `json:"report,omitempty"`
}

// Limits is the per-org admission policy.
type Limits struct {
	// MaxConcurrent caps simultaneously executing runs (default 2).
	MaxConcurrent int `json:"max_concurrent"`
	// MaxQueued caps admitted-but-unstarted runs; past it Submit sheds
	// with ErrOverloaded (default 64).
	MaxQueued int `json:"max_queued"`
}
