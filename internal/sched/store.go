package sched

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/jobstore"
)

// Bucket schema inside the embedded job store. Compound keys join
// components with '\x00' (never present in ids), so prefix scans walk
// one org or one job without touching neighbors.
//
//	jobs        job-id → Job JSON
//	org_index   org \x00 job-id → job-id
//	user_index  org \x00 user \x00 job-id → job-id
//	limits      org → Limits JSON
//	runs        job-id \x00 %016d(run-id) → Run JSON
//	jobseq      (sequence only) global job numbers
//	runseq/<org> (sequence only) per-org run ids — strictly monotonic
//	             across restarts because the counter is replayed
const (
	bucketJobs      = "jobs"
	bucketOrgIndex  = "org_index"
	bucketUserIndex = "user_index"
	bucketLimits    = "limits"
	bucketRuns      = "runs"
	bucketJobSeq    = "jobseq"
	runSeqPrefix    = "runseq/"
)

const keySep = "\x00"

func runKey(jobID string, runID uint64) []byte {
	return []byte(fmt.Sprintf("%s%s%016d", jobID, keySep, runID))
}

// putJob writes the job record and its org/user index rows.
func putJob(tx *jobstore.Tx, j *Job) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	if err := tx.Bucket(bucketJobs).Put([]byte(j.ID), data); err != nil {
		return err
	}
	if err := tx.Bucket(bucketOrgIndex).Put([]byte(j.Spec.Org+keySep+j.ID), []byte(j.ID)); err != nil {
		return err
	}
	if j.Spec.User != "" {
		return tx.Bucket(bucketUserIndex).Put(
			[]byte(j.Spec.Org+keySep+j.Spec.User+keySep+j.ID), []byte(j.ID))
	}
	return nil
}

func getJob(tx *jobstore.Tx, id string) (*Job, error) {
	data := tx.Bucket(bucketJobs).Get([]byte(id))
	if data == nil {
		return nil, ErrNotFound
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("sched: corrupt job record %s: %w", id, err)
	}
	return &j, nil
}

func putRun(tx *jobstore.Tx, r *Run) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return tx.Bucket(bucketRuns).Put(runKey(r.JobID, r.ID), data)
}

// forEachRun visits every run of jobID in run-id order.
func forEachRun(tx *jobstore.Tx, jobID string, fn func(*Run) error) error {
	prefix := jobID + keySep
	return tx.Bucket(bucketRuns).ForEach(func(k, v []byte) error {
		if !strings.HasPrefix(string(k), prefix) {
			return nil
		}
		var r Run
		if err := json.Unmarshal(v, &r); err != nil {
			return fmt.Errorf("sched: corrupt run record %s: %w", k, err)
		}
		return fn(&r)
	})
}

// forEachJob visits every job, or only org's jobs when org is
// non-empty.
func forEachJob(tx *jobstore.Tx, org string, fn func(*Job) error) error {
	if org == "" {
		return tx.Bucket(bucketJobs).ForEach(func(_, v []byte) error {
			var j Job
			if err := json.Unmarshal(v, &j); err != nil {
				return fmt.Errorf("sched: corrupt job record: %w", err)
			}
			return fn(&j)
		})
	}
	prefix := org + keySep
	return tx.Bucket(bucketOrgIndex).ForEach(func(k, id []byte) error {
		if !strings.HasPrefix(string(k), prefix) {
			return nil
		}
		j, err := getJob(tx, string(id))
		if err != nil {
			return err
		}
		return fn(j)
	})
}

func getLimits(tx *jobstore.Tx, org string, def Limits) Limits {
	data := tx.Bucket(bucketLimits).Get([]byte(org))
	if data == nil {
		return def
	}
	var l Limits
	if err := json.Unmarshal(data, &l); err != nil {
		return def
	}
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = def.MaxConcurrent
	}
	if l.MaxQueued <= 0 {
		l.MaxQueued = def.MaxQueued
	}
	return l
}

func putLimits(tx *jobstore.Tx, org string, l Limits) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return tx.Bucket(bucketLimits).Put([]byte(org), data)
}

func nextJobID(tx *jobstore.Tx) (string, error) {
	n, err := tx.Bucket(bucketJobSeq).NextSequence()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("j%06d", n), nil
}

func nextRunID(tx *jobstore.Tx, org string) (uint64, error) {
	return tx.Bucket(runSeqPrefix + org).NextSequence()
}
