package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/sched"
)

// MaxJobBodyBytes bounds one job-submission or limits request body.
const MaxJobBodyBytes = 1 << 20

// registerJobs wires the multi-tenant job API around an open
// Scheduler:
//
//	POST   /v1/jobs              submit a JobSpec (one-shot or cron)
//	GET    /v1/jobs[?org=]       list jobs
//	GET    /v1/jobs/{id}         one job record
//	DELETE /v1/jobs/{id}         cancel (idempotent on terminal jobs)
//	GET    /v1/jobs/{id}/runs    run history with persisted Reports
//	GET    /v1/orgs/{org}/limits admission policy
//	PUT    /v1/orgs/{org}/limits set admission policy
//
// Error mapping matches the ingestion endpoints: overload is 429 with
// Retry-After, draining/closed is 503, unknown ids are 404, and
// validation failures are 400.
func registerJobs(mux *http.ServeMux, s *sched.Scheduler) {
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec sched.JobSpec
		if !readJSON(w, r, &spec) {
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			jobErr(w, err, http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("org")))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			jobErr(w, err, http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			jobErr(w, err, http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/runs", func(w http.ResponseWriter, r *http.Request) {
		runs, err := s.Runs(r.PathValue("id"))
		if err != nil {
			jobErr(w, err, http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, runs)
	})
	mux.HandleFunc("GET /v1/orgs/{org}/limits", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Limits(r.PathValue("org")))
	})
	mux.HandleFunc("PUT /v1/orgs/{org}/limits", func(w http.ResponseWriter, r *http.Request) {
		var l sched.Limits
		if !readJSON(w, r, &l) {
			return
		}
		if err := s.SetLimits(r.PathValue("org"), l); err != nil {
			jobErr(w, err, http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, s.Limits(r.PathValue("org")))
	})
}

// readJSON decodes a bounded JSON body, rejecting unknown fields so
// typos in spec keys fail loudly instead of silently defaulting.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxJobBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// jobErr maps scheduler errors onto HTTP statuses; fallback covers
// call-specific defaults (400 for submit validation, 500 otherwise).
func jobErr(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, sched.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, sched.ErrDraining), errors.Is(err, sched.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, sched.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), fallback)
	}
}
