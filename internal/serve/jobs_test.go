package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/sched"
)

// slowExec lets the overload and drain tests hold runs open; the
// release channel gates completion.
type slowExec struct {
	started atomic.Int64
	release chan struct{}
}

func (e *slowExec) Run(ctx context.Context, spec sched.JobSpec, resume *sched.ResumeInfo) (*engine.Report, error) {
	e.started.Add(1)
	select {
	case <-e.release:
		return &engine.Report{Query: spec.Query, OutputRecords: 1}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func jobsServer(t *testing.T, cfg sched.Config) (*httptest.Server, *sched.Scheduler) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := sched.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ing, err := ingest.Open(childConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(ing, s))
	t.Cleanup(srv.Close)
	return srv, s
}

// specBody is a valid tiny sim job (the same shape the sched package's
// engine-integration tests run in ~10ms).
func specBody(org string) string {
	return fmt.Sprintf(`{"org":%q,"user":"ops","query":"clickcount","platform":"inc-hash",
		"data_bytes":8e8,"chunk_bytes":48e6,"nodes":3,"reducers":2,"seed":7}`, org)
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestJobsSubmitRunHistory(t *testing.T) {
	srv, _ := jobsServer(t, sched.Config{})

	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", specBody("acme"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Spec.Org != "acme" {
		t.Fatalf("job %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+job.ID, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == sched.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+job.ID+"/runs", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs: %d %s", resp.StatusCode, body)
	}
	var runs []sched.Run
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Report == nil || runs[0].Report.OutputRecords == 0 {
		t.Fatalf("run history %+v", runs)
	}

	// List filtered by org.
	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs?org=acme", "")
	var jobs []sched.Job
	if err := json.Unmarshal(body, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("list %+v", jobs)
	}
	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs?org=other", "")
	if err := json.Unmarshal(body, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("foreign org sees %+v", jobs)
	}
}

func TestJobsValidationAndNotFound(t *testing.T) {
	srv, _ := jobsServer(t, sched.Config{})

	// Unknown query → 400.
	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", `{"org":"a","user":"u","query":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: %d %s", resp.StatusCode, body)
	}
	// Unknown JSON field → 400 (typos must not silently default).
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", `{"org":"a","user":"u","query":"clickcount","nodez":4}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
	// Malformed body → 400.
	resp, _ = doJSON(t, "POST", srv.URL+"/v1/jobs", `{`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	// Unknown ids → 404 on get, runs, and cancel.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/j999999"},
		{"GET", "/v1/jobs/j999999/runs"},
		{"DELETE", "/v1/jobs/j999999"},
	} {
		resp, body = doJSON(t, probe.method, srv.URL+probe.path, "")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: %d %s", probe.method, probe.path, resp.StatusCode, body)
		}
	}
}

func TestJobsOverloadSheds429(t *testing.T) {
	exec := &slowExec{release: make(chan struct{})}
	srv, _ := jobsServer(t, sched.Config{
		Exec:          exec,
		DefaultLimits: sched.Limits{MaxConcurrent: 1, MaxQueued: 1},
	})
	defer close(exec.release)

	// First fills the run slot, second the queue; the third sheds.
	for i := 0; i < 2; i++ {
		resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", specBody("acme"))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", specBody("acme"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another org is unaffected.
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", specBody("other"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("other org shed too: %d %s", resp.StatusCode, body)
	}
}

func TestJobsCancelIdempotent(t *testing.T) {
	exec := &slowExec{release: make(chan struct{})}
	srv, _ := jobsServer(t, sched.Config{Exec: exec})
	defer close(exec.release)

	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", specBody("acme"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body = doJSON(t, "DELETE", srv.URL+"/v1/jobs/"+job.ID, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel #%d: %d %s", i+1, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.State != sched.StateCanceled {
			t.Fatalf("cancel #%d state %q", i+1, job.State)
		}
	}
}

func TestJobsLimitsRoundTrip(t *testing.T) {
	srv, _ := jobsServer(t, sched.Config{})

	resp, body := doJSON(t, "GET", srv.URL+"/v1/orgs/acme/limits", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get limits: %d %s", resp.StatusCode, body)
	}
	var l sched.Limits
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if l.MaxConcurrent <= 0 || l.MaxQueued <= 0 {
		t.Fatalf("default limits %+v", l)
	}

	resp, body = doJSON(t, "PUT", srv.URL+"/v1/orgs/acme/limits", `{"max_concurrent":7,"max_queued":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put limits: %d %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "GET", srv.URL+"/v1/orgs/acme/limits", "")
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if l.MaxConcurrent != 7 || l.MaxQueued != 9 {
		t.Fatalf("limits after PUT: %+v", l)
	}
	// Unknown field → 400.
	resp, _ = doJSON(t, "PUT", srv.URL+"/v1/orgs/acme/limits", `{"max_conc":7}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown limits field: %d", resp.StatusCode)
	}
}

// TestJobsDrainOnShutdown exercises the serve.Run drain path: with a
// run in flight, shutting down must wait for it (onepassd semantics —
// nothing acknowledged is abandoned), refuse new submissions, and
// leave the job store clean for reopen.
func TestJobsDrainOnShutdown(t *testing.T) {
	dir := t.TempDir()
	exec := &slowExec{release: make(chan struct{})}
	s, err := sched.Open(sched.Config{Dir: dir, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.Open(childConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, ing, Options{
			Addr: "127.0.0.1:0", AddrFile: addrFile,
			DrainTimeout: 10 * time.Second, Jobs: s,
		})
	}()
	var url string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			url = "http://" + string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if url == "" {
		t.Fatal("server never published its address")
	}

	resp, body := doJSON(t, "POST", url+"/v1/jobs", specBody("acme"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	for i := 0; exec.started.Load() == 0 && i < 200; i++ {
		time.Sleep(10 * time.Millisecond)
	}

	cancel() // the SIGTERM path: drain, not abandon
	time.AfterFunc(200*time.Millisecond, func() { close(exec.release) })
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Reopen: the in-flight run completed during drain.
	s2, err := sched.Open(sched.Config{Dir: dir, Exec: &slowExec{release: make(chan struct{})}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j, err := s2.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != sched.StateDone {
		t.Fatalf("job after drained shutdown: %q, want done", j.State)
	}
	if s2.Recovery.ResumedRuns != 0 || s2.Recovery.RequeuedRuns != 0 {
		t.Fatalf("drained shutdown left recovery work: %+v", s2.Recovery)
	}
}
