// Package serve is the HTTP face of onepassd: batch ingestion on
// POST /v1/events (newline-delimited records, acknowledged only after
// the WAL fsync), current answers with their coverage estimate γ on
// GET /v1/stats, the multi-tenant job API under /v1/jobs and
// /v1/orgs/{org}/limits (when a scheduler is attached), liveness on
// /healthz, and counters on /metricsz. Overload surfaces as 429 with
// Retry-After; shutdown is a graceful drain triggered by SIGTERM.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/ingest"
	"repro/internal/sched"
)

// MaxBodyBytes bounds one POST /v1/events request body.
const MaxBodyBytes = 8 << 20

// defaultStatsLimit caps /v1/stats answers unless ?limit= overrides.
const defaultStatsLimit = 100

// Options configures Run.
type Options struct {
	// Addr is the listen address (host:port; port 0 picks one).
	Addr string
	// AddrFile, if set, receives the bound address once listening —
	// how out-of-process tests and scripts discover a :0 port.
	AddrFile string
	// DrainTimeout bounds graceful shutdown: in-flight requests plus
	// the ingester drain (final fold, checkpoint, seal) and, when a
	// scheduler is attached, the scheduler drain (running jobs finish).
	DrainTimeout time.Duration
	// Jobs, when non-nil, attaches the durable job scheduler: the
	// /v1/jobs and /v1/orgs/{org}/limits endpoints are served and the
	// scheduler is drained and closed on shutdown.
	Jobs *sched.Scheduler
}

// NewHandler wires the service endpoints around an open Ingester and,
// when jobs is non-nil, the job scheduler API.
func NewHandler(ing *ingest.Ingester, jobs *sched.Scheduler) http.Handler {
	mux := http.NewServeMux()
	if jobs != nil {
		registerJobs(mux, jobs)
	}
	mux.HandleFunc("/v1/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(ing, w, r)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		handleStats(ing, w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := ing.Healthy(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ing.Metrics())
	})
	return mux
}

// ackResponse is the POST /v1/events success body: the durable batch
// sequence number clients key retries on.
type ackResponse struct {
	Seq     int64 `json:"seq"`
	Records int   `json:"records"`
}

func handleEvents(ing *ingest.Ingester, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	records := splitRecords(body)
	seq, err := ing.Ingest(records)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ackResponse{Seq: seq, Records: len(records)})
	case errors.Is(err, ingest.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ingest.ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ingest.ErrBadRecord), errors.Is(err, ingest.ErrEmptyBatch):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		// Wedged (WAL failure): nothing was acknowledged.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

// splitRecords turns a newline-delimited body into records, ignoring
// a trailing newline. Interior empty lines are kept (and rejected by
// validation) so clients learn about malformed payloads.
func splitRecords(body []byte) [][]byte {
	body = bytes.TrimSuffix(body, []byte("\n"))
	if len(body) == 0 {
		return nil
	}
	return bytes.Split(body, []byte("\n"))
}

func handleStats(ing *ingest.Ingester, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	limit := defaultStatsLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad limit %q: %v", v, err), http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, ing.Stats(limit))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Run listens on opts.Addr and serves until the context is canceled
// or SIGTERM/SIGINT arrives, then drains: stop accepting requests,
// finish in-flight ones, and drain the ingester (final fold,
// checkpoint, segment seal) under opts.DrainTimeout. A nil error
// means every acknowledged batch is folded and durable.
func Run(ctx context.Context, ing *ingest.Ingester, opts Options) error {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	if opts.AddrFile != "" {
		if err := os.WriteFile(opts.AddrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	srv := &http.Server{Handler: NewHandler(ing, opts.Jobs)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		drainJobs(drainCtx, opts.Jobs)
		ing.Drain(drainCtx) // still try to persist what was acknowledged
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := drainJobs(drainCtx, opts.Jobs); err != nil {
		ing.Drain(drainCtx)
		return err
	}
	return ing.Drain(drainCtx)
}

// drainJobs refuses new submissions, waits for running jobs under the
// drain budget, and closes the job store. Interrupted runs (budget
// exceeded) are persisted as such and resume on the next boot.
func drainJobs(ctx context.Context, s *sched.Scheduler) error {
	if s == nil {
		return nil
	}
	if err := s.Drain(ctx); err != nil {
		s.Close() // running contexts cancel; runs persist as interrupted
		return fmt.Errorf("serve: job drain: %w", err)
	}
	return s.Close()
}
