package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/ingest"
)

// TestMain doubles as the daemon child for the process-level tests:
// when SERVE_TEST_CHILD=1, this binary IS onepassd (opened on the
// directory in SERVE_TEST_DIR), so the tests can kill -9 a real
// process and restart it — the crash model no in-process harness can
// fully reproduce.
func TestMain(m *testing.M) {
	if os.Getenv("SERVE_TEST_CHILD") == "1" {
		runChild()
		return
	}
	os.Exit(m.Run())
}

func childConfig(dir string) ingest.Config {
	factory, validate, err := ingest.StandardQuery("clickcount")
	if err != nil {
		panic(err)
	}
	return ingest.Config{
		Dir:             dir,
		QueryName:       "clickcount",
		NewQuery:        factory,
		Validate:        validate,
		SealBytes:       4 << 10,
		CheckpointEvery: 5,
		QueueDepth:      64,
	}
}

func runChild() {
	ing, err := ingest.Open(childConfig(os.Getenv("SERVE_TEST_DIR")))
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(1)
	}
	err = Run(context.Background(), ing, Options{
		Addr:         "127.0.0.1:0",
		AddrFile:     os.Getenv("SERVE_TEST_ADDRFILE"),
		DrainTimeout: 20 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child run:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// --- in-process HTTP tests ---

func testIngester(t *testing.T, dir string, fail *ingest.Failpoints, budget int64) *ingest.Ingester {
	t.Helper()
	cfg := childConfig(dir)
	cfg.Fail = fail
	if budget > 0 {
		cfg.MaxInflightBytes = budget
	}
	ing, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

func clickLine(i int) string {
	return fmt.Sprintf("%013d\tuser%04d\t/page%03d\t200\t9\tMoz", 1_700_000_000_000+int64(i)*991, i%5, i%11)
}

func postBatch(t *testing.T, url string, lines ...string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/events", "text/plain", strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPEndpoints(t *testing.T) {
	ing := testIngester(t, t.TempDir(), nil, 0)
	srv := httptest.NewServer(NewHandler(ing, nil))
	defer srv.Close()

	resp := postBatch(t, srv.URL, clickLine(0), clickLine(1), clickLine(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post: %v", resp.Status)
	}
	var ack struct {
		Seq     int64 `json:"seq"`
		Records int   `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || ack.Seq != 1 || ack.Records != 3 {
		t.Fatalf("ack: %+v (%v)", ack, err)
	}

	if resp := postBatch(t, srv.URL, "not a click record"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad record: %v", resp.Status)
	}
	if resp := postBatch(t, srv.URL); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %v", resp.Status)
	}

	// Stats must eventually reflect the folded batch with γ = 1.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/stats?limit=10")
		if err != nil {
			t.Fatal(err)
		}
		var st ingest.Stats
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.FoldedRecords == 3 {
			if st.Gamma != 1 || st.AckedBatches != 1 || st.Query != "clickcount" {
				t.Fatalf("stats: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fold never caught up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	if r, _ := http.Get(srv.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", r.Status)
	}
	r, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var m ingest.MetricsSnapshot
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil || m.AcceptedBatches != 1 {
		t.Fatalf("metricsz: %+v (%v)", m, err)
	}
	r.Body.Close()

	if r, _ := http.Get(srv.URL + "/v1/stats?limit=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %v", r.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ing.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// A drained service reports unhealthy and refuses new batches.
	if r, _ := http.Get(srv.URL + "/healthz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained healthz: %v", r.Status)
	}
	if resp := postBatch(t, srv.URL, clickLine(9)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained post: %v", resp.Status)
	}
}

// TestHTTPOverload429 stalls the folder and posts until the byte
// budget sheds: the response must be 429 with a Retry-After header,
// and must clear once the stall lifts.
func TestHTTPOverload429(t *testing.T) {
	gate := make(chan struct{})
	fail := &ingest.Failpoints{FoldDelay: func(seq int64) { <-gate }}
	ing := testIngester(t, t.TempDir(), fail, 4<<10)
	srv := httptest.NewServer(NewHandler(ing, nil))
	defer srv.Close()

	lines := make([]string, 20)
	for i := range lines {
		lines[i] = clickLine(i)
	}
	var sawRetry bool
	for i := 0; i < 100; i++ {
		resp := postBatch(t, srv.URL, lines...)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") != "1" {
				t.Fatalf("429 without Retry-After: %v", resp.Header)
			}
			sawRetry = true
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %d: %v", i, resp.Status)
		}
	}
	if !sawRetry {
		t.Fatal("overload never produced a 429")
	}
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postBatch(t, srv.URL, lines...)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("429s never cleared after the stall")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ing.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// --- process-level tests (re-exec this test binary as the daemon) ---

type child struct {
	cmd  *exec.Cmd
	addr string
}

func startChild(t *testing.T, dir string) *child {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"SERVE_TEST_CHILD=1",
		"SERVE_TEST_DIR="+dir,
		"SERVE_TEST_ADDRFILE="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			c := &child{cmd: cmd, addr: "http://" + string(data)}
			// The daemon may still be a hair from Serve; wait for health.
			for time.Now().Before(deadline) {
				if r, err := http.Get(c.addr + "/healthz"); err == nil {
					r.Body.Close()
					return c
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatal("child never became healthy")
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *child) post(t *testing.T, lines ...string) int64 {
	t.Helper()
	resp, err := http.Post(c.addr+"/v1/events", "text/plain", bytes.NewBufferString(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("post: %v: %s", resp.Status, body)
	}
	var ack struct {
		Seq int64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.Seq
}

func (c *child) stats(t *testing.T) ingest.Stats {
	t.Helper()
	resp, err := http.Get(c.addr + "/v1/stats?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ingest.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// oracleServeStats folds the same batches in-process, uninterrupted.
func oracleServeStats(t *testing.T, batches [][]string) ingest.Stats {
	t.Helper()
	ing, err := ingest.Open(childConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for _, lines := range batches {
		recs := make([][]byte, len(lines))
		for i, l := range lines {
			recs[i] = []byte(l)
		}
		if _, err := ing.Ingest(recs); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := ing.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	return ing.Stats(0)
}

func mkServeBatches(n, per int) [][]string {
	batches := make([][]string, n)
	for b := 0; b < n; b++ {
		lines := make([]string, per)
		for j := 0; j < per; j++ {
			lines[j] = clickLine(b*per + j)
		}
		batches[b] = lines
	}
	return batches
}

// TestProcessKillRecovery kills the daemon process with SIGKILL
// between acknowledged batches, restarts it on the same directory,
// finishes the stream, drains via SIGTERM, and requires the final
// answers to be bit-identical to an uninterrupted run.
func TestProcessKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	const n, per, killAfter = 24, 4, 11
	batches := mkServeBatches(n, per)
	oracle := oracleServeStats(t, batches)

	dir := t.TempDir()
	c := startChild(t, dir)
	for b := 0; b < killAfter; b++ {
		if seq := c.post(t, batches[b]...); seq != int64(b+1) {
			t.Fatalf("batch %d acked as %d", b+1, seq)
		}
	}
	// Nothing in flight: SIGKILL between requests. Every acknowledged
	// batch must survive; no more, no fewer.
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()

	c2 := startChild(t, dir)
	st := c2.stats(t)
	if st.AckedBatches != killAfter || st.AckedRecords != killAfter*per {
		t.Fatalf("after kill -9: %+v", st)
	}
	for b := killAfter; b < n; b++ {
		c2.post(t, batches[b]...)
	}
	// Graceful drain: SIGTERM, exit status 0.
	if err := c2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := c2.cmd.Wait(); err != nil {
		t.Fatalf("drained daemon exited non-zero: %v", err)
	}

	// Reopen the directory in-process to read the drained state.
	ing, err := ingest.Open(childConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if r := ing.Recovery; r.ReplayedBatches != 0 || r.RecoveryReadBytes != 0 {
		t.Fatalf("drain left replay work: %+v", r)
	}
	got := ing.Stats(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ing.Drain(ctx)
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("killed+recovered daemon diverged:\n got %+v\nwant %+v", got, oracle)
	}
}

// TestProcessSigtermDrains checks the plain shutdown path: SIGTERM on
// an idle daemon exits 0 and leaves a directory that reopens with no
// replay.
func TestProcessSigtermDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	dir := t.TempDir()
	c := startChild(t, dir)
	c.post(t, clickLine(1), clickLine(2))
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM: %v", err)
	}
	ing, err := ingest.Open(childConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if r := ing.Recovery; r.ReplayedBatches != 0 || r.RestoredSeq != 1 {
		t.Fatalf("reopen after drain: %+v", r)
	}
	if st := ing.Stats(0); st.AckedRecords != 2 {
		t.Fatalf("stats after drain: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ing.Drain(ctx)
}
