// Package sim implements a deterministic process-oriented discrete-event
// simulation kernel.
//
// The reproduction executes the paper's cluster experiments (10 nodes ×
// 4 cores, map/reduce slots, per-node disks and NICs) on a single
// machine: every map/shuffle/merge/reduce operation processes real data,
// but time is virtual. Processes (Proc) are goroutines scheduled one at
// a time by the Kernel in strict (time, sequence) order, so simulations
// are bit-for-bit deterministic. Resources model slots, CPU cores, disk
// arms, and NICs with FIFO queueing and utilization accounting, which
// the metrics package samples to reproduce the paper's CPU-utilization
// and iowait plots.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// killSentinel is panicked inside a parked process when the kernel
// shuts down, unwinding the goroutine cleanly.
type killSentinel struct{}

// event is a scheduled resumption of a process.
type event struct {
	at  int64
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation driver. Create with NewKernel,
// add processes with Spawn, then call Run. A Kernel must not be reused
// after Run returns.
type Kernel struct {
	now     int64
	seq     uint64
	events  eventHeap
	parked  chan *Proc
	live    int // non-daemon procs not yet finished
	blocked map[*Proc]string
	allPr   []*Proc
	started bool
	err     error
	workers *Workers // fork/join compute pool; nil = inline execution
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		parked:  make(chan *Proc),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time in nanoseconds since the start
// of the simulation.
func (k *Kernel) Now() int64 { return k.now }

// NowDur returns the current virtual time as a duration.
func (k *Kernel) NowDur() time.Duration { return time.Duration(k.now) }

// Proc is a simulated process. All its methods must be called from the
// process's own goroutine (the function passed to Spawn).
type Proc struct {
	k      *Kernel
	name   string
	daemon bool
	done   bool
	killed bool
	resume chan struct{}
	forks  []*Future // outstanding Fork futures, drained by Join
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time in nanoseconds.
func (p *Proc) Now() int64 { return p.k.now }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn creates a process that starts at the current virtual time.
// It may be called before Run or from inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, false, fn)
}

// SpawnDaemon creates a background process (e.g. a metrics sampler)
// that does not keep the simulation alive: Run returns when all
// non-daemon processes have finished, killing daemons.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, true, fn)
}

func (k *Kernel) spawn(name string, daemon bool, fn func(p *Proc)) *Proc {
	// resume has capacity 1 so shutdown can hand a kill token to a
	// goroutine that has not yet reached its first <-p.resume.
	p := &Proc{k: k, name: name, daemon: daemon, resume: make(chan struct{}, 1)}
	if !daemon {
		k.live++
	}
	k.allPr = append(k.allPr, p)
	k.schedule(k.now, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); ok {
					return // clean shutdown
				}
				panic(r)
			}
		}()
		<-p.resume // wait for first scheduling
		if p.killed {
			panic(killSentinel{})
		}
		fn(p)
		p.done = true
		k.parked <- p
	}()
	return p
}

// schedule enqueues a resumption of p at time at.
func (k *Kernel) schedule(at int64, p *Proc) {
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, p: p})
}

// park transfers control from the running process back to the kernel.
// The process resumes when the kernel next schedules it.
func (p *Proc) park(why string) {
	p.k.blocked[p] = why
	p.k.parked <- p
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Hold advances the process's virtual time by d (which must be ≥ 0).
func (p *Proc) Hold(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s Hold(%v) negative", p.name, d))
	}
	p.k.schedule(p.k.now+int64(d), p)
	p.park("hold")
}

// Yield reschedules the process at the current time, letting other
// processes scheduled for this instant run first.
func (p *Proc) Yield() { p.Hold(0) }

// Run executes the simulation until all non-daemon processes finish.
// It returns an error if the simulation deadlocks (live processes
// remain but no events are pending).
func (k *Kernel) Run() error {
	if k.started {
		return fmt.Errorf("sim: kernel reused")
	}
	k.started = true
	for k.live > 0 {
		if k.events.Len() == 0 {
			k.err = k.deadlockError()
			break
		}
		e := heap.Pop(&k.events).(event)
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		if e.p.done {
			continue // stale event for a finished process
		}
		delete(k.blocked, e.p)
		e.p.resume <- struct{}{}
		q := <-k.parked
		if q.done {
			delete(k.blocked, q)
			if !q.daemon {
				k.live--
			}
		}
	}
	k.shutdown()
	return k.err
}

// deadlockError reports which processes are blocked and why.
func (k *Kernel) deadlockError() error {
	var names []string
	for p, why := range k.blocked {
		if !p.done {
			names = append(names, p.name+"("+why+")")
		}
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%v with %d blocked procs: %v", k.NowDur(), len(names), names)
}

// shutdown kills every remaining parked process so its goroutine exits.
func (k *Kernel) shutdown() {
	// Drain the compute pool first: a killed proc may hold Futures for
	// closures still queued or running, and its unwinding defers (Join)
	// must find them completed rather than hang on a torn-down pool.
	if k.workers != nil {
		k.workers.quiesce()
	}
	for _, p := range k.allPr {
		if p.done {
			continue
		}
		p.killed = true
		p.done = true
		// resume is buffered (capacity 1), so this send succeeds even
		// for a goroutine that has not yet reached its first
		// <-p.resume: the token waits in the buffer, the goroutine
		// picks it up, observes killed, and unwinds. It does not
		// report back through k.parked because the kill panic bypasses
		// the normal completion path, so nothing to drain.
		p.resume <- struct{}{}
	}
	if k.workers != nil {
		k.workers.close()
	}
}
