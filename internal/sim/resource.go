package sim

import (
	"fmt"
	"time"
)

// Resource models a countable resource with FIFO queueing: task slots
// (capacity = slots per node), CPU cores (capacity = cores), a disk arm
// (capacity = 1), or NIC bandwidth tokens. Processes Acquire units,
// hold them across virtual time, and Release them.
//
// The resource keeps time integrals of units-in-use and of queue
// length, from which the metrics package derives utilization (for the
// paper's CPU plots) and wait pressure (for the iowait plots).
type Resource struct {
	k        *Kernel
	name     string
	capacity int64
	inUse    int64
	waiters  []*waiter

	lastChange   int64 // virtual time of the last inUse/queue change
	busyIntegral int64 // ∫ inUse dt, in unit·nanoseconds
	qIntegral    int64 // ∫ queueLen dt
}

type waiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %s capacity %d", name, capacity))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int64 { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// advance accumulates the time integrals up to the current instant.
func (r *Resource) advance() {
	dt := r.k.now - r.lastChange
	if dt > 0 {
		r.busyIntegral += r.inUse * dt
		r.qIntegral += int64(len(r.waiters)) * dt
	}
	r.lastChange = r.k.now
}

// BusyIntegral returns ∫ unitsInUse dt up to now, in unit·nanoseconds.
func (r *Resource) BusyIntegral() int64 {
	r.advance()
	return r.busyIntegral
}

// QueueIntegral returns ∫ queueLen dt up to now.
func (r *Resource) QueueIntegral() int64 {
	r.advance()
	return r.qIntegral
}

// Acquire blocks the process until n units are available, then takes
// them. Grants are strictly FIFO: a request never overtakes an earlier
// one even if it could be satisfied sooner, matching slot scheduling.
func (p *Proc) Acquire(r *Resource, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: %s acquires %d of %s (capacity %d)", p.name, n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.advance()
		r.inUse += n
		return
	}
	r.advance()
	r.waiters = append(r.waiters, &waiter{p: p, n: n})
	p.park("acquire " + r.name)
}

// Release returns n units and wakes any waiters that now fit, in FIFO
// order.
func (p *Proc) Release(r *Resource, n int64) {
	r.advance()
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: %s over-released %s", p.name, r.name))
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		r.k.schedule(r.k.now, w.p)
	}
}

// Use acquires n units, holds them for d, and releases them. It is the
// common pattern for a CPU burst or an I/O service time.
func (p *Proc) Use(r *Resource, n int64, d time.Duration) {
	p.Acquire(r, n)
	p.Hold(d)
	p.Release(r, n)
}

// Cond is a broadcast condition variable for simulated processes.
// There is no spurious wakeup beyond the usual requirement to re-check
// the predicate: Broadcast wakes exactly the processes waiting at that
// instant.
type Cond struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewCond creates a condition variable.
func NewCond(k *Kernel, name string) *Cond {
	return &Cond{k: k, name: name}
}

// Wait parks the process until the next Broadcast.
func (p *Proc) Wait(c *Cond) {
	c.waiters = append(c.waiters, p)
	p.park("wait " + c.name)
}

// WaitFor parks the process until pred() is true, re-checking after
// every Broadcast of c. pred is evaluated immediately first.
func (p *Proc) WaitFor(c *Cond, pred func() bool) {
	for !pred() {
		p.Wait(c)
	}
}

// Broadcast wakes all current waiters. It may be called from any
// running process (or before Run from the setup code).
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.k.schedule(c.k.now, p)
	}
	c.waiters = c.waiters[:0]
}
