package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestHoldAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at int64
	k.Spawn("a", func(p *Proc) {
		p.Hold(5 * time.Second)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != int64(5*time.Second) {
		t.Fatalf("time after hold = %d", at)
	}
}

func TestFIFOOrderingSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("spawn order not FIFO: %s", got)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Hold(2 * time.Second)
				log = append(log, fmt.Sprintf("a@%d", p.Now()/1e9))
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Hold(3 * time.Second)
				log = append(log, fmt.Sprintf("b@%d", p.Now()/1e9))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	// At t=6 both are runnable; b scheduled its wakeup at t=3, before a
	// did at t=4, so FIFO-by-scheduling-order runs b first.
	first := run()
	if first != "a@2 b@3 a@4 b@6 a@6" {
		t.Fatalf("unexpected interleaving: %s", first)
	}
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("non-deterministic: %s vs %s", got, first)
		}
	}
}

func TestResourceCapacityLimitsParallelism(t *testing.T) {
	k := NewKernel()
	disk := NewResource(k, "disk", 1)
	var finishTimes []int64
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("io%d", i), func(p *Proc) {
			p.Use(disk, 1, 10*time.Second)
			finishTimes = append(finishTimes, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{int64(10 * time.Second), int64(20 * time.Second), int64(30 * time.Second)}
	for i, w := range want {
		if finishTimes[i] != w {
			t.Fatalf("finish[%d]=%v want %v", i, finishTimes[i], w)
		}
	}
}

func TestResourceConcurrentWithinCapacity(t *testing.T) {
	k := NewKernel()
	cpu := NewResource(k, "cpu", 4)
	var last int64
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			p.Use(cpu, 1, 7*time.Second)
			last = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if last != int64(7*time.Second) {
		t.Fatalf("4 tasks on 4 cores should all finish at 7s, got %v", time.Duration(last))
	}
}

func TestResourceFIFONoOvertaking(t *testing.T) {
	// A small request queued behind a big one must not jump the queue.
	k := NewKernel()
	r := NewResource(k, "r", 4)
	var order []string
	k.Spawn("hog", func(p *Proc) {
		p.Acquire(r, 4)
		p.Hold(10 * time.Second)
		p.Release(r, 4)
	})
	k.Spawn("big", func(p *Proc) {
		p.Hold(time.Second)
		p.Acquire(r, 3)
		order = append(order, "big")
		p.Hold(5 * time.Second)
		p.Release(r, 3)
	})
	k.Spawn("small", func(p *Proc) {
		p.Hold(2 * time.Second)
		p.Acquire(r, 1)
		order = append(order, "small")
		p.Release(r, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "big,small" {
		t.Fatalf("queue overtaken: %v", order)
	}
}

func TestBusyIntegral(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	k.Spawn("a", func(p *Proc) {
		p.Hold(5 * time.Second)
		p.Use(r, 1, 10*time.Second)
		p.Hold(5 * time.Second)
		if got, want := r.BusyIntegral(), int64(10*time.Second); got != want {
			t.Errorf("busy integral %d want %d", got, want)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "ready")
	ready := false
	var woke []int64
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.WaitFor(c, func() bool { return ready })
			woke = append(woke, p.Now())
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Hold(4 * time.Second)
		ready = true
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters", len(woke))
	}
	for _, w := range woke {
		if w != int64(4*time.Second) {
			t.Fatalf("waiter woke at %v", time.Duration(w))
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "never")
	k.Spawn("stuck", func(p *Proc) {
		p.Wait(c)
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	k := NewKernel()
	samples := 0
	k.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Hold(time.Second)
			samples++
		}
	})
	k.Spawn("work", func(p *Proc) {
		p.Hold(10 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The sampler ticks at t=1..9; at t=10 the (earlier-scheduled)
	// worker event runs first and ends the simulation, so the final
	// same-instant daemon tick is not delivered. Callers that need a
	// final sample take one after Run returns.
	if samples != 9 {
		t.Fatalf("sampler ticked %d times, want 9", samples)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childTime int64
	k.Spawn("parent", func(p *Proc) {
		p.Hold(3 * time.Second)
		p.Kernel().Spawn("child", func(q *Proc) {
			q.Hold(2 * time.Second)
			childTime = q.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != int64(5*time.Second) {
		t.Fatalf("child finished at %v", time.Duration(childTime))
	}
}

func TestQueueIntegral(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	k.Spawn("a", func(p *Proc) { p.Use(r, 1, 10*time.Second) })
	k.Spawn("b", func(p *Proc) { p.Use(r, 1, 10*time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// b waits 10s in the queue.
	if got, want := r.QueueIntegral(), int64(10*time.Second); got != want {
		t.Fatalf("queue integral %d want %d", got, want)
	}
}

func TestKernelReuseRejected(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("expected error on reuse")
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := NewKernel()
	cpu := NewResource(k, "cpu", 4)
	done := 0
	for i := 0; i < 500; i++ {
		d := time.Duration(i%17+1) * time.Millisecond
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Use(cpu, 1, d)
			}
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 500 {
		t.Fatalf("done=%d", done)
	}
}

func BenchmarkKernelContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestAcquireOverCapacityPanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 2)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic acquiring beyond capacity")
			}
		}()
		p.Acquire(r, 3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverReleasePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 2)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on over-release")
			}
		}()
		p.Release(r, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeHoldPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative hold")
			}
		}()
		p.Hold(-time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(k, "bad", 0)
}

func TestYieldOrdersBehindSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Yield()
		order = append(order, "a-after-yield")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "b,a-after-yield" {
		t.Fatalf("yield did not defer: %v", order)
	}
}

func TestResourceNamesAndCapacity(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk0", 3)
	if r.Name() != "disk0" || r.Capacity() != 3 || r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatal("accessors broken")
	}
}
