package sim

import (
	"fmt"
	"time"

	"repro/internal/substrate"
)

// The DES is one implementation of the execution substrate: a
// simulated process is a substrate.Proc (virtual clock, fork/join
// compute pool), and a capacity-1 resource is a substrate.Timer
// (FIFO-queued device arm). Platform components written against the
// substrate interfaces run unchanged on either backend.
var (
	_ substrate.Proc  = (*Proc)(nil)
	_ substrate.Timer = (*Resource)(nil)
)

// Use implements substrate.Timer: acquire tokens units, hold them for
// d of virtual time, release them. The Proc must be a simulated
// process of this resource's kernel — substrate implementations are
// never mixed within one run, so anything else is a wiring bug worth
// a loud panic.
func (r *Resource) Use(p substrate.Proc, tokens int64, d time.Duration) {
	sp, ok := p.(*Proc)
	if !ok {
		panic(fmt.Sprintf("sim: resource %s used by non-simulated proc %T", r.name, p))
	}
	sp.Use(r, tokens, d)
}
