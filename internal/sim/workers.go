package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers is the kernel's deterministic fork/join compute pool.
//
// The kernel schedules exactly one simulated process at a time, which
// keeps virtual time bit-for-bit deterministic — but it also serializes
// the real CPU work (parsing, map functions, sorting, hash builds) that
// runs inside each process. Determinism only requires the *ordering* of
// simulated events, not serialization of the pure computation between
// them, so a running Proc may Fork self-contained closures onto real
// goroutines and Wait/Join for their results before it touches shared
// simulation state or parks.
//
// The contract that makes this race-free and deterministic by
// construction:
//
//   - a forked closure is pure with respect to the simulation: it reads
//     only data captured at Fork time and writes only its own result
//     slot (per-closure scratch, seeded RNG streams keyed by its input
//     — never kernel, resource, or collector state);
//   - the forking process waits for a closure's Future before consuming
//     its result, and all results are consumed in a fixed program
//     order, so the merged outcome is independent of worker count
//     (including 1, where closures run inline on the proc goroutine).
//
// Virtual time never depends on how many workers exist: charges are
// computed from the data, not from wall-clock, so event order, virtual
// times, and reports are identical for any pool size.
type Workers struct {
	n int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Future
	started bool
	closed  bool

	inFlight sync.WaitGroup // submissions not yet finished (for shutdown)
}

// newWorkers creates a pool of n workers (n ≥ 1 after defaulting).
// Worker goroutines start lazily on first submission.
func newWorkers(n int) *Workers {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	w := &Workers{n: n}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Size returns the number of pool workers.
func (w *Workers) Size() int { return w.n }

// submit enqueues a future for execution on the pool.
func (w *Workers) submit(f *Future) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		// The kernel has shut down; run inline so the Future still
		// completes and Wait never hangs.
		f.run()
		return
	}
	if !w.started {
		w.started = true
		for i := 0; i < w.n; i++ {
			go w.work()
		}
	}
	w.inFlight.Add(1)
	w.queue = append(w.queue, f)
	w.mu.Unlock()
	w.cond.Signal()
}

// work is one pool goroutine: run queued futures until the pool closes.
func (w *Workers) work() {
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		f := w.queue[0]
		w.queue = w.queue[1:]
		w.mu.Unlock()
		f.run()
		w.inFlight.Done()
	}
}

// quiesce blocks until every submitted closure has finished. The
// kernel calls it during shutdown so no worker goroutine is still
// computing (and no Future is still pending) when Run returns.
func (w *Workers) quiesce() { w.inFlight.Wait() }

// close marks the pool closed and wakes the workers so they exit.
// Pending futures are drained first (quiesce runs before close).
func (w *Workers) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Future is the handle of one forked closure.
type Future struct {
	fn       func()
	done     chan struct{}
	panicked interface{}
	waited   bool
}

// run executes the closure, capturing a panic instead of letting it
// kill the worker goroutine (it is re-raised on the forking process at
// Wait/Join, where it is attributable to a task).
func (f *Future) run() {
	defer close(f.done)
	defer func() {
		if r := recover(); r != nil {
			f.panicked = r
		}
	}()
	f.fn()
}

// Wait blocks until the closure has finished. If the closure panicked,
// the panic is re-raised here, on the forking process's goroutine.
// Wait must be called from the process that forked the future.
func (f *Future) Wait() {
	<-f.done
	f.waited = true
	if r := f.panicked; r != nil {
		f.panicked = nil
		panic(fmt.Sprintf("sim: forked closure panicked: %v", r))
	}
}

// SetWorkers sizes the kernel's compute pool: n real goroutines execute
// forked closures (n ≤ 0 means GOMAXPROCS). With n = 1 closures run
// inline on the forking process's goroutine. It must be called before
// Run.
func (k *Kernel) SetWorkers(n int) {
	if k.started {
		panic("sim: SetWorkers after Run")
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == 1 {
		k.workers = nil // inline execution, no pool goroutines
		return
	}
	k.workers = newWorkers(n)
}

// Workers returns the compute-pool size (1 when no pool is configured).
func (k *Kernel) Workers() int {
	if k.workers == nil {
		return 1
	}
	return k.workers.n
}

// Workers returns the kernel compute-pool size available to this
// process (1 when compute runs inline). Components use it to decide
// how finely to shard pure compute; because sharded results are always
// combined in deterministic order, the choice never changes outputs.
func (p *Proc) Workers() int { return p.k.Workers() }

// Fork submits a pure compute closure to the kernel's worker pool and
// returns its Future. The closure must not touch simulation state (the
// kernel, resources, conds, other procs' data); it computes into its
// own captured result slot. The process may park (Hold, Acquire, …)
// between Fork and Wait — real compute then overlaps the virtual time
// of this and other processes — but it must Wait (or Join) before
// consuming the result or finishing.
//
// With no pool (Workers() == 1) the closure runs inline, making the
// scheduling trivially deterministic; with a pool, determinism follows
// from the purity contract above.
func (p *Proc) Fork(fn func()) *Future {
	f := &Future{fn: fn, done: make(chan struct{})}
	if p.k.workers == nil {
		f.run()
	} else {
		p.forks = append(p.forks, f)
		p.k.workers.submit(f)
	}
	return f
}

// Join waits for every outstanding Fork of this process, re-raising the
// first captured panic. It is idempotent and cheap when nothing is
// outstanding; tasks with conditional early exits should `defer
// p.Join()` so no future outlives its attempt.
func (p *Proc) Join() {
	forks := p.forks
	p.forks = nil
	for _, f := range forks {
		if !f.waited {
			f.Wait()
		}
	}
}

// ParallelFor runs fn(0) … fn(n-1) on the worker pool and returns when
// all have finished (re-raising the first panic). Each fn(i) must obey
// the Fork purity contract and write only to its own result slot; the
// caller then combines slots in index order, so the result is
// independent of worker count. The calling process does not park.
func (p *Proc) ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.k.workers == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = p.Fork(func() { fn(i) })
	}
	var firstPanic interface{}
	for _, f := range futs {
		<-f.done
		f.waited = true
		if f.panicked != nil && firstPanic == nil {
			firstPanic = f.panicked
			f.panicked = nil
		}
	}
	if firstPanic != nil {
		panic(fmt.Sprintf("sim: forked closure panicked: %v", firstPanic))
	}
}
