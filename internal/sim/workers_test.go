package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestForkJoinResults checks that forked closures deliver results into
// their own slots and Join collects them all, for pool sizes 1..8.
func TestForkJoinResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		k := NewKernel()
		k.SetWorkers(workers)
		const n = 32
		got := make([]int, n)
		k.Spawn("fork", func(p *Proc) {
			for i := 0; i < n; i++ {
				i := i
				p.Fork(func() { got[i] = i * i })
			}
			p.Join()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForkDoesNotPerturbVirtualTime asserts the core determinism
// invariant: the event interleaving of two procs that fork compute
// between holds is identical for any worker count.
func TestForkDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(workers int) string {
		k := NewKernel()
		k.SetWorkers(workers)
		var log []string
		for _, name := range []string{"a", "b"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					sum := 0
					f := p.Fork(func() {
						for j := 0; j < 1000; j++ {
							sum += j
						}
					})
					p.Hold(time.Duration(i+1) * time.Second)
					f.Wait()
					log = append(log, fmt.Sprintf("%s@%d:%d", name, p.Now()/1e9, sum))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		for rep := 0; rep < 3; rep++ {
			if got := run(w); got != want {
				t.Fatalf("workers=%d rep=%d: %q != %q", w, rep, got, want)
			}
		}
	}
}

// TestParallelForCombinesInOrder verifies ParallelFor produces
// slot-ordered results regardless of pool size.
func TestParallelForCombinesInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		k := NewKernel()
		k.SetWorkers(workers)
		var out string
		k.Spawn("pf", func(p *Proc) {
			parts := make([]string, 10)
			p.ParallelFor(10, func(i int) { parts[i] = fmt.Sprintf("%d", i) })
			out = strings.Join(parts, ",")
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if out != "0,1,2,3,4,5,6,7,8,9" {
			t.Fatalf("workers=%d: %q", workers, out)
		}
	}
}

// TestForkPanicPropagates checks a panicking closure surfaces on the
// forking proc at Wait, not on a pool goroutine.
func TestForkPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		k := NewKernel()
		k.SetWorkers(workers)
		caught := false
		k.Spawn("p", func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					caught = strings.Contains(fmt.Sprint(r), "boom")
				}
			}()
			f := p.Fork(func() { panic("boom") })
			f.Wait()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !caught {
			t.Fatalf("workers=%d: panic not propagated to Wait", workers)
		}
	}
}

// TestShutdownWithInFlightCompute kills a proc that parked with forks
// still queued/running: Run must quiesce the pool and return without
// leaking the proc goroutine or the compute. Guards the old shutdown
// bug where a goroutine not parked on resume hit the select/default
// branch and leaked.
func TestShutdownWithInFlightCompute(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	started := make(chan struct{})
	var finished atomic.Int32
	k.SpawnDaemon("victim", func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Fork(func() {
				finished.Add(1)
			})
		}
		close(started)
		// Park forever with forks outstanding; the kernel kills this
		// daemon at shutdown while compute may still be in flight.
		p.Hold(time.Hour)
		p.Join()
	})
	k.Spawn("work", func(p *Proc) {
		<-started // make sure the daemon has forked before we finish
		p.Hold(time.Millisecond)
	})
	doneCh := make(chan error, 1)
	go func() { doneCh <- k.Run() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung at shutdown with in-flight compute")
	}
	if got := finished.Load(); got != 8 {
		t.Fatalf("shutdown did not quiesce pool: %d/8 closures finished", got)
	}
}

// TestShutdownKillsNeverStartedProc spawns a proc from another proc's
// final instant so its goroutine may not have reached its first resume
// receive when Run tears down; shutdown must still unwind it.
func TestShutdownKillsNeverStartedProc(t *testing.T) {
	for rep := 0; rep < 50; rep++ {
		k := NewKernel()
		ran := false
		k.Spawn("parent", func(p *Proc) {
			// Daemon scheduled at the same instant the simulation ends:
			// it is never resumed, only killed.
			p.Kernel().SpawnDaemon("orphan", func(q *Proc) {
				ran = true
			})
		})
		doneCh := make(chan error, 1)
		go func() { doneCh <- k.Run() }()
		select {
		case err := <-doneCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Run hung killing a never-started proc")
		}
		if ran {
			t.Fatal("orphan daemon body ran after kill")
		}
	}
}

// TestForkAcrossPark exercises the overlap pattern used by map tasks:
// fork, park on a hold (other procs run), then join — under -race this
// is the main check that pool compute cannot race with kernel state.
func TestForkAcrossPark(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	var total int64
	for i := 0; i < 16; i++ {
		i := i
		k.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			sum := int64(0)
			f := p.Fork(func() {
				for j := int64(0); j < 10000; j++ {
					sum += j
				}
			})
			p.Hold(time.Duration(i%5+1) * time.Second)
			f.Wait()
			total += sum
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := int64(16 * 10000 * 9999 / 2); total != want {
		t.Fatalf("total=%d want %d", total, want)
	}
}

// TestSetWorkersAfterRunPanics locks in the must-configure-before-Run
// contract.
func TestSetWorkersAfterRunPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from SetWorkers after Run")
		}
	}()
	k.SetWorkers(4)
}
