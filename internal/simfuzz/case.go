// Package simfuzz is the randomized differential conformance harness
// for the five platforms: a seeded case generator (query × workload
// shape × cluster configuration × fault schedule), a differential
// runner, and a shrinker.
//
// Every generated case is executed on each applicable platform and
// checked for the three properties the paper's equivalence claim
// (§4: the hash platforms change cost, never answers) rests on:
//
//  1. answers match the sequential oracle (internal/reference) exactly,
//     up to each query's documented streaming semantics;
//  2. answers and Reports are DeepEqual-identical across worker-pool
//     sizes (the fork/join pool trades wall-clock time only);
//  3. the Report's accounting identities hold (checksum overhead sums,
//     recovery counters zero on clean runs, well-formed spans).
//
// A failing case is shrunk to a minimal reproduction (drop fault
// events, halve the input, shrink the cluster, relax knobs toward
// defaults) and rendered as a ready-to-paste Go test plus a corpus
// JSON blob; minimized repros live in testdata/corpus/ and are
// replayed by TestCorpusReplay.
package simfuzz

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/dfs"
	"repro/internal/engine"
	"repro/internal/kvenc"
	"repro/internal/mr"
	"repro/internal/queries"
	"repro/internal/sortmerge"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Scale is the physical:logical byte ratio every case runs at — the
// same 1/4096 the engine's own tests use, so a 64KB physical input
// simulates a 256MB logical job.
const Scale = 1.0 / 4096

// Planted-mutation plumbing, re-exported from the package that hosts
// the mutation so harness users need only one import.
const (
	MutationEnv          = sortmerge.MutationEnv
	MutationSpillDropRun = sortmerge.MutationSpillDropRun
)

// Fail is one injected task-failure entry: the task (map chunk index
// or reduce task index) fails Times attempts before succeeding.
type Fail struct {
	Index int `json:"index"`
	Times int `json:"times"`
}

// Case is one self-contained conformance scenario. It is plain data —
// JSON-serializable for the committed corpus — and deterministic: the
// same Case always builds the same input bytes, job specs, and fault
// schedule, so a verdict replays bit-for-bit.
type Case struct {
	Seed int64 `json:"seed"` // generator seed (provenance; replay key)

	// Query shape.
	Query     string `json:"query"` // clickcount pagefreq frequsers sessionization windowcount trigram
	Threshold int64  `json:"threshold,omitempty"`
	StateSize int    `json:"state_size,omitempty"`
	GapMS     int64  `json:"gap_ms,omitempty"`
	WindowMS  int64  `json:"window_ms,omitempty"`
	SlackMS   int64  `json:"slack_ms,omitempty"`
	// Poison wraps the query so Map panics on ~1% of records
	// (content-selected), run under a SkipBadRecords budget; the
	// oracle filters the same records.
	Poison bool `json:"poison,omitempty"`

	// Workload shape (click stream, or document corpus for trigram).
	DataSeed   int64   `json:"data_seed"`
	InputKB    int     `json:"input_kb"` // physical bytes generated
	ChunkKB    int     `json:"chunk_kb"` // the paper's chunk size C
	Users      int     `json:"users,omitempty"`
	UserSkew   float64 `json:"user_skew,omitempty"`
	URLs       int     `json:"urls,omitempty"`
	URLSkew    float64 `json:"url_skew,omitempty"`
	DurationMS int64   `json:"duration_ms,omitempty"`
	JitterMS   int64   `json:"jitter_ms,omitempty"`
	PadBytes   int     `json:"pad_bytes,omitempty"` // record-shape knob
	Vocab      int     `json:"vocab,omitempty"`
	WordSkew   float64 `json:"word_skew,omitempty"`
	DocWords   int     `json:"doc_words,omitempty"`

	// Cluster shape and Hadoop-level knobs.
	Nodes       int  `json:"nodes"`
	Cores       int  `json:"cores"`
	MapSlots    int  `json:"map_slots"`
	ReduceSlots int  `json:"reduce_slots"`
	R           int  `json:"r"`
	MergeFactor int  `json:"merge_factor"` // F
	MapBufKB    int  `json:"map_buf_kb"`
	ReduceBufKB int  `json:"reduce_buf_kb"`
	PageB       int  `json:"page_b"`
	SlotCache   int  `json:"slot_cache"`
	Replication int  `json:"replication"`
	SSD         bool `json:"ssd,omitempty"`
	Checksums   bool `json:"checksums,omitempty"`
	ProgressMS  int  `json:"progress_ms"`

	// Hints — sometimes deliberately wrong: hints steer memory
	// planning and must never change answers.
	Km           float64 `json:"km"`
	DistinctKeys int64   `json:"distinct_keys"`

	// Platform-specific job knobs.
	ScanEvery     int64   `json:"scan_every,omitempty"`     // DINC scavenger period
	SnapshotEvery float64 `json:"snapshot_every,omitempty"` // HOP snapshots

	// Fault schedule. Kill/heartbeat/checkpoint times are stored as
	// fractions of the platform's clean-run MapFinishTime (measured by
	// the runner), so the schedule stays meaningful as other knobs
	// shrink.
	MapFails      []Fail  `json:"map_fails,omitempty"`
	ReduceFails   []Fail  `json:"reduce_fails,omitempty"`
	FailPoint     float64 `json:"fail_point,omitempty"`
	KillNode      int     `json:"kill_node,omitempty"`
	KillFracPct   int     `json:"kill_frac_pct,omitempty"` // % of clean MapFinishTime; 0 = no kill
	SlowNode      int     `json:"slow_node,omitempty"`
	SlowFactor    float64 `json:"slow_factor,omitempty"` // ≤1 = none
	Speculate     bool    `json:"speculate,omitempty"`
	ShufErrPct    int     `json:"shuf_err_pct,omitempty"` // transient shuffle-error %, real backend only
	IOErrRate     float64 `json:"io_err_rate,omitempty"`
	CorruptRate   float64 `json:"corrupt_rate,omitempty"`
	TornWrites    bool    `json:"torn_writes,omitempty"`
	DiskClasses   []int   `json:"disk_classes,omitempty"`
	DiskWindowPct int     `json:"disk_window_pct,omitempty"` // disk-fault window [0, pct% of MapFinishTime)
	CheckpointDiv int     `json:"checkpoint_div,omitempty"`  // CheckpointEvery = MapFinishTime/div; 0 = off

	// Platforms this case runs differentially (platform name strings).
	Platforms []string `json:"platforms"`

	// Workers2 is the second worker-pool size for the cross-worker
	// determinism check (0 disables; the base runs are serial).
	Workers2 int `json:"workers2,omitempty"`

	// NodeCombine switches the in-node combine stage on
	// (engine.NodeCombineOn): combinable queries fold each node's map
	// outputs into one merged run before the shuffle. Answers must stay
	// oracle-identical on every platform and both backends — including
	// the real backend's combine-under-faults path, which the DES
	// deliberately does not mirror.
	NodeCombine bool `json:"node_combine,omitempty"`
}

// queryKinds lists the valid Query values.
var queryKinds = []string{"clickcount", "pagefreq", "frequsers", "sessionization", "windowcount", "trigram"}

// platformNames maps the engine's platform name strings back to
// Platform values.
var platformNames = map[string]engine.Platform{
	engine.SortMerge.String(): engine.SortMerge,
	engine.HOP.String():       engine.HOP,
	engine.MRHash.String():    engine.MRHash,
	engine.INCHash.String():   engine.INCHash,
	engine.DINCHash.String():  engine.DINCHash,
}

// AllPlatforms returns the five platform names in engine order.
func AllPlatforms() []string {
	return []string{
		engine.SortMerge.String(), engine.HOP.String(), engine.MRHash.String(),
		engine.INCHash.String(), engine.DINCHash.String(),
	}
}

// Clone deep-copies the case (slices included), so shrink candidates
// never alias the current best.
func (c Case) Clone() Case {
	d := c
	d.MapFails = append([]Fail(nil), c.MapFails...)
	d.ReduceFails = append([]Fail(nil), c.ReduceFails...)
	d.DiskClasses = append([]int(nil), c.DiskClasses...)
	d.Platforms = append([]string(nil), c.Platforms...)
	return d
}

// taskFaults reports whether per-task attempt failures are scheduled.
func (c *Case) taskFaults() bool { return len(c.MapFails) > 0 || len(c.ReduceFails) > 0 }

// faulted reports whether the case injects anything at all — if so the
// runner performs a second, faulted run per platform (anchored on the
// clean run's MapFinishTime).
func (c *Case) faulted() bool {
	return c.taskFaults() || c.KillFracPct > 0 || c.SlowFactor > 1 ||
		c.IOErrRate > 0 || c.CorruptRate > 0 || c.TornWrites || c.CheckpointDiv > 0
}

// realFaultCompatible reports whether the wall-clock backend can run
// this case's fault schedule — the seventh differential leg. Disk
// damage (transient I/O errors, corruption, torn writes) stays
// DES-only; everything else either carries over verbatim or has a
// progress-anchored translation (kills), and transient shuffle errors
// exist only on this leg.
func (c *Case) realFaultCompatible() bool {
	return (c.faulted() || c.ShufErrPct > 0) &&
		c.IOErrRate == 0 && c.CorruptRate == 0 && !c.TornWrites
}

// hopCompatible reports whether the hop platform can run this case:
// HOP rejects task/node fault injection and persistent disk damage
// (engine config rules), and the poison wrapper hides the interfaces
// its pipelining path needs.
func (c *Case) hopCompatible() bool {
	return !c.taskFaults() && c.KillFracPct == 0 && c.SlowFactor <= 1 && !c.Speculate &&
		c.CorruptRate == 0 && !c.TornWrites && c.IOErrRate <= 0.25 &&
		c.CheckpointDiv == 0 && !c.Poison
}

// Input builds the deterministic input for the case.
func (c *Case) Input() dfs.Input {
	if c.Query == "trigram" {
		return workload.NewDocCorpus(workload.DocSpec{
			PhysBytes: int64(c.InputKB) << 10,
			ChunkPhys: int64(c.ChunkKB) << 10,
			Seed:      c.DataSeed,
			Vocab:     c.Vocab,
			WordSkew:  c.WordSkew,
			DocWords:  c.DocWords,
		})
	}
	return workload.NewClickStream(workload.ClickSpec{
		PhysBytes: int64(c.InputKB) << 10,
		ChunkPhys: int64(c.ChunkKB) << 10,
		Seed:      c.DataSeed,
		Users:     c.Users,
		UserSkew:  c.UserSkew,
		URLs:      c.URLs,
		URLSkew:   c.URLSkew,
		Duration:  time.Duration(c.DurationMS) * time.Millisecond,
		Jitter:    time.Duration(c.JitterMS) * time.Millisecond,
		Pad:       c.PadBytes,
	})
}

// newQuery builds a fresh query instance. Query state (watermarks,
// scratch buffers) is per-run, so every engine.Run and every oracle
// evaluation gets its own instance. filter substitutes the
// quiet-filtering variant of the poison wrapper (the oracle's view of
// a quarantined run).
func (c *Case) newQuery(filter bool) mr.Query {
	var q mr.Query
	switch c.Query {
	case "clickcount":
		q = queries.NewClickCount()
	case "pagefreq":
		q = queries.NewPageFrequency()
	case "frequsers":
		q = queries.NewFrequentUsers(c.Threshold)
	case "sessionization":
		q = queries.NewSessionization(time.Duration(c.GapMS)*time.Millisecond, c.StateSize,
			time.Duration(c.SlackMS)*time.Millisecond)
	case "windowcount":
		q = queries.NewWindowCount(time.Duration(c.WindowMS)*time.Millisecond,
			time.Duration(c.SlackMS)*time.Millisecond)
	case "trigram":
		q = queries.NewTrigramCount(c.Threshold)
	default:
		panic(fmt.Sprintf("simfuzz: unknown query %q", c.Query))
	}
	if c.Poison {
		q = &poisonQuery{inner: q, filter: filter}
	}
	return q
}

// clusterConfig assembles the engine cluster for the case.
func (c *Case) clusterConfig(workers int) engine.ClusterConfig {
	return engine.ClusterConfig{
		Nodes:            c.Nodes,
		Cores:            c.Cores,
		MapSlots:         c.MapSlots,
		ReduceSlots:      c.ReduceSlots,
		R:                c.R,
		MergeFactor:      c.MergeFactor,
		MapBuffer:        int64(c.MapBufKB) << 10,
		ReduceBuffer:     int64(c.ReduceBufKB) << 10,
		Page:             int64(c.PageB),
		SlotCache:        c.SlotCache,
		SSDIntermediate:  c.SSD,
		Replication:      c.Replication,
		Model:            cost.Default(Scale),
		ProgressInterval: time.Duration(c.ProgressMS) * time.Millisecond,
		Parallelism:      workers,
		Checksums:        c.Checksums,
	}
}

// jobSpec assembles the complete submission for one platform.
// withFaults includes the fault schedule, with kill/heartbeat/
// checkpoint times anchored on mapFinish (the platform's clean-run
// MapFinishTime, measured by the runner first).
func (c *Case) jobSpec(pl engine.Platform, input dfs.Input, workers int, withFaults bool, mapFinish time.Duration) engine.JobSpec {
	spec := engine.JobSpec{
		Query:         c.newQuery(false),
		Input:         input,
		Platform:      pl,
		Cluster:       c.clusterConfig(workers),
		Hints:         mr.Hints{Km: c.Km, DistinctKeys: c.DistinctKeys},
		CollectOutput: true,
		ScanEvery:     c.ScanEvery,
		Seed:          c.DataSeed ^ 0x51f0,
	}
	if c.NodeCombine {
		spec.NodeCombine = engine.NodeCombineOn
	}
	if pl == engine.HOP {
		spec.SnapshotEvery = c.SnapshotEvery
	}
	if c.Poison {
		spec.SkipBadRecords = 1 << 20
	}
	if !withFaults {
		return spec
	}
	f := &spec.Faults
	f.FailPoint = c.FailPoint
	if len(c.MapFails) > 0 {
		f.MapFailures = map[int]int{}
		for _, mf := range c.MapFails {
			f.MapFailures[mf.Index] = mf.Times
		}
	}
	if len(c.ReduceFails) > 0 {
		f.ReduceFailures = map[int]int{}
		for _, rf := range c.ReduceFails {
			f.ReduceFailures[rf.Index] = rf.Times
		}
	}
	if c.KillFracPct > 0 {
		at := mapFinish * time.Duration(c.KillFracPct) / 100
		if at <= 0 {
			at = time.Millisecond
		}
		f.KillNodes = map[int]time.Duration{c.KillNode: at}
		f.HeartbeatInterval = maxDur(mapFinish/100, time.Millisecond)
		f.HeartbeatTimeout = maxDur(mapFinish/25, 4*time.Millisecond)
	}
	if c.SlowFactor > 1 {
		f.SlowNodes = map[int]float64{c.SlowNode: c.SlowFactor}
		f.Speculate = c.Speculate
		if c.Speculate {
			f.HeartbeatInterval = maxDur(mapFinish/100, time.Millisecond)
		}
	}
	if c.IOErrRate > 0 || c.CorruptRate > 0 || c.TornWrites {
		f.Disk = engine.DiskFaultPlan{
			IOErrorRate: c.IOErrRate,
			CorruptRate: c.CorruptRate,
			TornWrites:  c.TornWrites,
		}
		for _, cl := range c.DiskClasses {
			f.Disk.Classes = append(f.Disk.Classes, storage.IOClass(cl))
		}
		// Bound the injection window so recovery always converges.
		// Sustained spill corruption is unwinnable: an attempt spilling W
		// frames survives with probability (1-rate)^W, so a rate applied
		// for the whole run can keep every reduce attempt failing on its
		// own spill and the retry ladder never terminates. A window
		// anchored on the clean map-finish time still exercises detection
		// and recovery — re-writes after the window heal.
		if c.DiskWindowPct > 0 {
			f.Disk.To = maxDur(mapFinish*time.Duration(c.DiskWindowPct)/100, time.Millisecond)
		}
	}
	if c.CheckpointDiv > 0 {
		spec.CheckpointEvery = maxDur(mapFinish/time.Duration(c.CheckpointDiv), time.Millisecond)
	}
	return spec
}

// realJobSpec assembles the faulted submission for the wall-clock
// backend. The shared fault dimensions (task failures, stragglers,
// speculation, checkpointing) carry over verbatim from jobSpec; the
// virtual-time kill translates to its progress-anchored form — the
// node dies at KillFracPct% of the map phase instead of KillFracPct%
// of the clean MapFinishTime — and the real-only transient
// shuffle-error rate is applied. Callers must gate on
// realFaultCompatible: disk damage has no real-backend translation.
func (c *Case) realJobSpec(pl engine.Platform, input dfs.Input, mapFinish time.Duration) engine.JobSpec {
	spec := c.jobSpec(pl, input, 1, true, mapFinish)
	f := &spec.Faults
	if len(f.KillNodes) > 0 {
		f.KillNodes = nil
		f.KillAtMapProgress = map[int]float64{c.KillNode: float64(c.KillFracPct) / 100}
	}
	f.HeartbeatInterval, f.HeartbeatTimeout = 0, 0
	if c.ShufErrPct > 0 {
		f.ShuffleErrorRate = float64(c.ShufErrPct) / 100
	}
	return spec
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// poisonQuery wraps a query so Map panics on a deterministic,
// content-selected ~1% of records (timestamp digits "37" at positions
// 11–12) — the way real poison records behave. The filter variant
// skips the same records quietly, giving the oracle answer a
// quarantined run must reproduce. The wrapper deliberately hides every
// optional interface (Combiner, Incremental, ...): quarantine is a
// map-side mechanism and the generator restricts poison cases to the
// non-incremental platforms.
type poisonQuery struct {
	inner  mr.Query
	filter bool
}

func poisonedRecord(record []byte) bool {
	return len(record) >= 13 && record[11] == '3' && record[12] == '7'
}

func (q *poisonQuery) Name() string { return q.inner.Name() }

func (q *poisonQuery) Map(record []byte, emit func(k, v []byte)) {
	if poisonedRecord(record) {
		if q.filter {
			return
		}
		panic("simfuzz: poison record")
	}
	q.inner.Map(record, emit)
}

func (q *poisonQuery) Reduce(key []byte, values kvenc.ValueIter, out mr.OutputWriter) {
	q.inner.Reduce(key, values, out)
}

// Normalize clamps the case into the engine's validity envelope,
// resolving cross-field constraints (torn writes need a kill and
// checksums, kills need a surviving node, HOP rejects fault plans,
// ...). Gen emits normalized cases; Shrink re-normalizes every
// candidate so simplification steps cannot produce a spec the engine
// would reject.
func (c *Case) Normalize() {
	valid := false
	for _, k := range queryKinds {
		if c.Query == k {
			valid = true
			break
		}
	}
	if !valid {
		c.Query = "clickcount"
	}

	// Workload.
	if c.InputKB < 4 {
		c.InputKB = 4
	}
	if c.InputKB > 1024 {
		c.InputKB = 1024
	}
	if c.ChunkKB < 1 {
		c.ChunkKB = 1
	}
	if c.ChunkKB > c.InputKB {
		c.ChunkKB = c.InputKB
	}
	if c.Query == "trigram" {
		if c.Vocab < 3 {
			c.Vocab = 200
		}
		if c.WordSkew <= 1 {
			c.WordSkew = 1.1
		}
		if c.DocWords < 3 {
			c.DocWords = 8
		}
	} else {
		if c.Users < 2 {
			c.Users = 200
		}
		if c.UserSkew <= 1 {
			c.UserSkew = 1.2
		}
		if c.URLs < 2 {
			c.URLs = 50
		}
		if c.URLSkew <= 1 {
			c.URLSkew = 1.3
		}
		if c.DurationMS < 1000 {
			c.DurationMS = int64(time.Hour / time.Millisecond)
		}
		if c.JitterMS < 0 {
			c.JitterMS = 0
		}
		if c.PadBytes < 0 {
			c.PadBytes = 0
		}
		if c.PadBytes > 256 {
			c.PadBytes = 256
		}
	}

	// Query parameters.
	switch c.Query {
	case "frequsers", "trigram":
		if c.Threshold < 1 {
			c.Threshold = 2
		}
	case "sessionization":
		if c.StateSize < 64 {
			c.StateSize = 512
		}
		if c.GapMS < 1 {
			c.GapMS = int64(5 * time.Minute / time.Millisecond)
		}
	case "windowcount":
		if c.WindowMS < 1 {
			c.WindowMS = int64(5 * time.Minute / time.Millisecond)
		}
	}
	switch c.Query {
	case "sessionization", "windowcount":
		// Slack must exceed the workload's disorder bound or answers
		// legitimately drift from the oracle.
		if c.SlackMS <= c.JitterMS {
			c.SlackMS = c.JitterMS + 1000
		}
	}
	if c.Poison {
		// Poison needs click-style records and the non-incremental
		// quarantine path.
		switch c.Query {
		case "clickcount", "pagefreq", "frequsers":
		default:
			c.Poison = false
		}
	}

	// Cluster.
	c.Nodes = clampInt(c.Nodes, 1, 8)
	c.Cores = clampInt(c.Cores, 1, 4)
	c.MapSlots = clampInt(c.MapSlots, 1, 4)
	c.ReduceSlots = clampInt(c.ReduceSlots, 1, 4)
	c.R = clampInt(c.R, 1, 4)
	if c.MergeFactor < 2 {
		c.MergeFactor = 2
	}
	if c.MapBufKB < 1 {
		c.MapBufKB = 1
	}
	if c.ReduceBufKB < 1 {
		c.ReduceBufKB = 1
	}
	c.PageB = clampInt(c.PageB, 64, 1<<16)
	c.SlotCache = clampInt(c.SlotCache, 1, 64)
	c.Replication = clampInt(c.Replication, 1, c.Nodes)
	c.ProgressMS = clampInt(c.ProgressMS, 200, 60_000)
	if c.Km <= 0 {
		c.Km = 0.2
	}
	if c.Km > 16 {
		c.Km = 16
	}
	if c.DistinctKeys < 1 {
		c.DistinctKeys = 1024
	}
	if c.ScanEvery < 0 {
		c.ScanEvery = 0
	}
	if c.SnapshotEvery < 0 || c.SnapshotEvery >= 1 {
		c.SnapshotEvery = 0
	}

	// Faults.
	if c.Poison {
		// Keep the quarantine and fault-recovery matrices separate:
		// a poison case is otherwise clean.
		c.clearFaults()
	}
	if c.FailPoint < 0 {
		c.FailPoint = 0
	}
	if c.FailPoint > 1 {
		c.FailPoint = 1
	}
	if c.KillFracPct < 0 {
		c.KillFracPct = 0
	}
	if c.KillFracPct > 0 {
		if c.Nodes < 2 {
			c.Nodes = 2
		}
		c.KillFracPct = clampInt(c.KillFracPct, 1, 95)
		c.KillNode = modInt(c.KillNode, c.Nodes)
	} else {
		c.KillNode = 0
		c.TornWrites = false // torn tails surface at node kills
		c.CheckpointDiv = 0  // checkpoints are generated only alongside kills
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 0
		c.SlowNode = 0
		c.Speculate = false
	} else {
		if c.SlowFactor > 8 {
			c.SlowFactor = 8
		}
		c.SlowNode = modInt(c.SlowNode, c.Nodes)
	}
	c.ShufErrPct = clampInt(c.ShufErrPct, 0, 50)
	c.IOErrRate = clampRate(c.IOErrRate)
	c.CorruptRate = clampRate(c.CorruptRate)
	if c.CorruptRate > 0 || c.TornWrites {
		c.Checksums = true
	}
	c.CheckpointDiv = clampInt(c.CheckpointDiv, 0, 64)
	if len(c.DiskClasses) > 0 {
		seen := map[int]bool{}
		var classes []int
		for _, cl := range c.DiskClasses {
			cl = modInt(cl, int(storage.NumIOClasses))
			if !seen[cl] {
				seen[cl] = true
				classes = append(classes, cl)
			}
		}
		c.DiskClasses = classes
	}
	if c.IOErrRate == 0 && c.CorruptRate == 0 && !c.TornWrites {
		c.DiskClasses = nil
	}
	if c.IOErrRate > 0 || c.CorruptRate > 0 {
		// Corruption (and for uniformity any rate-based disk fault) must
		// run in a bounded window or reduce attempts can fail on their
		// own spill forever; see jobSpec.
		if c.DiskWindowPct == 0 {
			c.DiskWindowPct = 150
		}
		c.DiskWindowPct = clampInt(c.DiskWindowPct, 25, 400)
	} else {
		c.DiskWindowPct = 0
	}

	// Task-failure indices must land on real tasks.
	chunks := c.Input().NumChunks()
	c.MapFails = normalizeFails(c.MapFails, chunks)
	c.ReduceFails = normalizeFails(c.ReduceFails, c.R*c.Nodes)
	if len(c.MapFails) == 0 && len(c.ReduceFails) == 0 {
		c.FailPoint = 0 // meaningful only with scheduled task failures
	}

	// Platforms: known names, deduped, HOP only when compatible.
	seen := map[string]bool{}
	var pls []string
	for _, name := range c.Platforms {
		if _, ok := platformNames[name]; !ok || seen[name] {
			continue
		}
		if name == engine.HOP.String() && !c.hopCompatible() {
			continue
		}
		if c.Poison && name != engine.SortMerge.String() && name != engine.MRHash.String() {
			continue
		}
		seen[name] = true
		pls = append(pls, name)
	}
	if len(pls) == 0 {
		pls = []string{engine.SortMerge.String()}
	}
	c.Platforms = pls

	if c.Workers2 < 0 {
		c.Workers2 = 0
	}
	if c.Workers2 == 1 {
		c.Workers2 = 2
	}
	if c.Workers2 > 8 {
		c.Workers2 = 8
	}
}

// clearFaults removes the whole fault schedule.
func (c *Case) clearFaults() {
	c.MapFails = nil
	c.ReduceFails = nil
	c.FailPoint = 0
	c.KillNode, c.KillFracPct = 0, 0
	c.SlowNode, c.SlowFactor = 0, 0
	c.Speculate = false
	c.ShufErrPct = 0
	c.IOErrRate, c.CorruptRate = 0, 0
	c.TornWrites = false
	c.DiskClasses = nil
	c.DiskWindowPct = 0
	c.CheckpointDiv = 0
}

// normalizeFails clamps indices into [0,n), merges duplicates (max
// times wins), and drops non-positive counts.
func normalizeFails(fails []Fail, n int) []Fail {
	if len(fails) == 0 || n <= 0 {
		return nil
	}
	times := map[int]int{}
	var order []int
	for _, f := range fails {
		if f.Times < 1 {
			continue
		}
		if f.Times > 3 {
			f.Times = 3
		}
		idx := modInt(f.Index, n)
		if _, ok := times[idx]; !ok {
			order = append(order, idx)
		}
		if f.Times > times[idx] {
			times[idx] = f.Times
		}
	}
	var out []Fail
	for _, idx := range order {
		out = append(out, Fail{Index: idx, Times: times[idx]})
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func modInt(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 0.5 {
		return 0.5
	}
	return r
}
