package simfuzz

import (
	"math/rand"
	"time"

	"repro/internal/storage"
)

// Gen derives a complete random case from a seed. The draw order is
// fixed, so the same seed always yields the same case (the replay
// key); the result is already normalized.
//
// Roughly 45% of cases carry a fault schedule; inputs stay small
// (16–112KB physical ≈ 64–448MB logical at Scale) so a single case
// runs in tens of milliseconds and a 200-case smoke fits in CI.
func Gen(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed}

	c.Query = queryKinds[rng.Intn(len(queryKinds))]

	// Workload shape.
	c.DataSeed = rng.Int63n(1 << 40)
	c.InputKB = 16 + 16*rng.Intn(7) // 16..112
	c.ChunkKB = 2 + rng.Intn(15)    // 2..16
	if c.Query == "trigram" {
		c.Vocab = 100 + rng.Intn(400)
		c.WordSkew = 1.05 + rng.Float64()*0.7
		c.DocWords = 5 + rng.Intn(10)
	} else {
		c.Users = 50 + rng.Intn(750)
		c.UserSkew = 1.05 + rng.Float64()*0.95
		c.URLs = 20 + rng.Intn(180)
		c.URLSkew = 1.05 + rng.Float64()*0.95
		c.DurationMS = int64(1+rng.Intn(6)) * int64(time.Hour/time.Millisecond)
		c.JitterMS = int64(rng.Intn(3)) * 1000
		c.PadBytes = 8 + rng.Intn(57) // record-shape: 8..64 byte padding
	}

	// Query parameters.
	switch c.Query {
	case "frequsers":
		c.Threshold = 2 + rng.Int63n(30)
	case "trigram":
		c.Threshold = 1 + rng.Int63n(6)
	case "sessionization":
		c.GapMS = int64(1+rng.Intn(10)) * int64(time.Minute/time.Millisecond)
		c.StateSize = 128 << rng.Intn(5) // 128..2048
		c.SlackMS = c.JitterMS + 1000 + int64(rng.Intn(4))*1000
	case "windowcount":
		c.WindowMS = int64(5+rng.Intn(56)) * int64(time.Minute/time.Millisecond)
		c.SlackMS = c.JitterMS + 1000 + int64(rng.Intn(4))*1000
	}

	// Cluster shape and Hadoop knobs.
	c.Nodes = 2 + rng.Intn(3) // 2..4
	c.Cores = 1 + rng.Intn(2)
	c.MapSlots = 1 + rng.Intn(2)
	c.ReduceSlots = 1 + rng.Intn(2)
	c.R = 1 + rng.Intn(3)
	c.MergeFactor = 2 + rng.Intn(15) // F in 2..16
	c.MapBufKB = 2 << rng.Intn(6)    // 2..64
	c.ReduceBufKB = 1 << rng.Intn(7) // 1..64
	c.PageB = 256 << rng.Intn(5)     // 256..4096
	c.SlotCache = 1 + rng.Intn(8)
	c.Replication = 1 + rng.Intn(3)
	c.SSD = rng.Intn(4) == 0
	c.Checksums = rng.Intn(2) == 0
	c.ProgressMS = 500 + rng.Intn(4)*500

	// Hints: centered on plausible values, deliberately wrong (10× off
	// either way) 15% of the time — hints size buffers and tables but
	// must never change answers.
	km := map[string]float64{
		"clickcount": 0.12, "pagefreq": 0.15, "frequsers": 0.12,
		"sessionization": 1.0, "windowcount": 0.25, "trigram": 2.5,
	}[c.Query]
	c.Km = km * (0.5 + rng.Float64())
	keys := int64(c.Users + c.URLs + c.Vocab)
	c.DistinctKeys = 1 + keys/2 + rng.Int63n(keys+1)
	switch rng.Intn(7) {
	case 0:
		c.Km /= 10
		c.DistinctKeys = 1 + c.DistinctKeys/10
	case 1:
		c.Km *= 10
		c.DistinctKeys *= 10
	}

	// Platform-specific knobs.
	if rng.Intn(3) == 0 {
		c.ScanEvery = int64(256 << rng.Intn(5)) // DINC scavenger period
	}
	if rng.Intn(4) == 0 {
		c.SnapshotEvery = []float64{0.25, 0.5}[rng.Intn(2)] // HOP snapshots
	}

	// Fault schedule.
	if rng.Intn(100) < 45 {
		genFaults(rng, &c)
	} else if (c.Query == "clickcount" || c.Query == "pagefreq" || c.Query == "frequsers") &&
		rng.Intn(8) == 0 {
		c.Poison = true
	}

	c.Platforms = AllPlatforms()
	c.Workers2 = 2 + rng.Intn(5) // 2..6

	// Node combining (drawn last so earlier seeds' cases keep their
	// shape): a third of cases fold map outputs per node before the
	// shuffle — a no-op on uncombinable queries and HOP, a full
	// differential dimension everywhere else.
	c.NodeCombine = rng.Intn(3) == 0

	c.Normalize()
	return c
}

// genFaults draws a fault cocktail: independent coins per dimension so
// single-fault and combined-fault cases both occur.
func genFaults(rng *rand.Rand, c *Case) {
	chunks := (c.InputKB + c.ChunkKB - 1) / c.ChunkKB
	if rng.Intn(2) == 0 {
		for n := 1 + rng.Intn(3); n > 0; n-- {
			c.MapFails = append(c.MapFails, Fail{Index: rng.Intn(chunks), Times: 1 + rng.Intn(2)})
		}
	}
	if rng.Intn(10) < 3 {
		reducers := c.R * c.Nodes
		for n := 1 + rng.Intn(2); n > 0; n-- {
			c.ReduceFails = append(c.ReduceFails, Fail{Index: rng.Intn(reducers), Times: 1})
		}
	}
	c.FailPoint = []float64{0, 0.5, 1}[rng.Intn(3)]
	if rng.Intn(10) < 3 {
		c.KillNode = rng.Intn(c.Nodes)
		c.KillFracPct = 20 + rng.Intn(70)
		if rng.Intn(10) < 6 {
			c.CheckpointDiv = 4 + rng.Intn(8)
		}
	}
	if rng.Intn(10) < 3 {
		c.SlowNode = rng.Intn(c.Nodes)
		c.SlowFactor = 1.5 + rng.Float64()*2.5
		c.Speculate = rng.Intn(2) == 0
	}
	if rng.Intn(10) < 3 {
		c.ShufErrPct = 2 + rng.Intn(25) // real-backend leg only
	}
	if rng.Intn(10) < 4 {
		c.IOErrRate = 0.01 + rng.Float64()*0.14
	}
	if rng.Intn(2) == 0 {
		c.CorruptRate = 0.05 + rng.Float64()*0.25
		c.Checksums = true
	}
	if c.KillFracPct > 0 && c.Checksums && rng.Intn(2) == 0 {
		c.TornWrites = true
	}
	if (c.IOErrRate > 0 || c.CorruptRate > 0) && rng.Intn(4) == 0 {
		all := []int{
			int(storage.MapSpill), int(storage.MapOutput),
			int(storage.ReduceSpill), int(storage.Checkpoint),
		}
		for n := 1 + rng.Intn(2); n > 0; n-- {
			c.DiskClasses = append(c.DiskClasses, all[rng.Intn(len(all))])
		}
	}
	if c.IOErrRate > 0 || c.CorruptRate > 0 {
		c.DiskWindowPct = 50 + rng.Intn(200)
	}
}
