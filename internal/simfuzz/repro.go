package simfuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one committed regression case under testdata/corpus/:
// a (usually shrunk) case plus the context needed to replay it.
type CorpusEntry struct {
	// Name is the file stem; shown as the subtest name.
	Name string `json:"name"`
	// Note says where the case came from and what it exercises.
	Note string `json:"note,omitempty"`
	// Mutation names the planted mutation (ONEPASS_MUTATION value) the
	// replay must enable, "" for none.
	Mutation string `json:"mutation,omitempty"`
	// ExpectFailure is true when the replay must fail (mutation
	// repros); false means the case regressed once and must now pass.
	ExpectFailure bool `json:"expect_failure,omitempty"`
	Case          Case `json:"case"`
}

// LoadCorpus reads every *.json entry under dir, sorted by filename so
// replay order is stable.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var entries []CorpusEntry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var e CorpusEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("corpus %s: %w", filepath.Base(p), err)
		}
		if e.Name == "" {
			e.Name = strings.TrimSuffix(filepath.Base(p), ".json")
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// RenderRepro formats a failing case as everything needed to chase it:
// the verdict, the replay seed, the corpus JSON blob (paste into
// internal/simfuzz/testdata/corpus/<name>.json), and a ready-to-paste
// standalone Go test.
func RenderRepro(c Case, v Verdict, mutation string) string {
	entry := CorpusEntry{
		Name:          fmt.Sprintf("seed-%d", c.Seed),
		Mutation:      mutation,
		ExpectFailure: mutation != "",
		Case:          c,
	}
	blob, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return fmt.Sprintf("marshal repro: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "failing case (replay: go run ./cmd/simfuzz -replay-seed %d):\n%s\n\n", c.Seed, v.String())
	fmt.Fprintf(&b, "corpus entry (testdata/corpus/%s.json):\n%s\n\n", entry.Name, blob)
	b.WriteString("standalone regression test:\n")
	b.WriteString(GoTest(c, fmt.Sprintf("SimfuzzSeed%d", abs64(c.Seed)), mutation))
	return b.String()
}

// GoTest renders a self-contained regression test for the case. The
// generated test asserts the case passes — the form a repro takes
// after the bug it caught is fixed.
func GoTest(c Case, name, mutation string) string {
	blob, err := json.MarshalIndent(c, "", "\t")
	if err != nil {
		return fmt.Sprintf("// marshal case: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "func Test%s(t *testing.T) {\n", name)
	if mutation != "" {
		fmt.Fprintf(&b, "\t// Fails while ONEPASS_MUTATION=%s is exported.\n", mutation)
	}
	fmt.Fprintf(&b, "\tconst caseJSON = `%s`\n", string(blob))
	b.WriteString("\tvar c simfuzz.Case\n")
	b.WriteString("\tif err := json.Unmarshal([]byte(caseJSON), &c); err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	b.WriteString("\tif v := simfuzz.RunCase(c); !v.OK() {\n\t\tt.Fatalf(\"case fails:\\n%s\", v.String())\n\t}\n")
	b.WriteString("}\n")
	return b.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
