package simfuzz

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/engine"
	"repro/internal/mr"
	"repro/internal/realexec"
	"repro/internal/reference"
)

// Failure is one violated conformance property.
type Failure struct {
	Platform string `json:"platform"` // "name/clean", "name/faulted", or "name/workers"
	Check    string `json:"check"`    // property family: oracle, accounting, workers, run
	Detail   string `json:"detail"`
}

// Verdict is the outcome of running one case.
type Verdict struct {
	Failures []Failure `json:"failures,omitempty"`
}

// OK reports whether every check passed.
func (v *Verdict) OK() bool { return len(v.Failures) == 0 }

// String lists the failures, one per line.
func (v *Verdict) String() string {
	if v.OK() {
		return "ok"
	}
	var b strings.Builder
	for _, f := range v.Failures {
		fmt.Fprintf(&b, "[%s] %s: %s\n", f.Platform, f.Check, f.Detail)
	}
	return strings.TrimRight(b.String(), "\n")
}

func (v *Verdict) addf(platform, check, format string, args ...any) {
	v.Failures = append(v.Failures, Failure{
		Platform: platform, Check: check, Detail: fmt.Sprintf(format, args...),
	})
}

// RunCase executes one case on every platform it names and returns the
// verdict. Per platform: a clean run checked against the oracle and
// the accounting identities; if the case carries a fault schedule, a
// faulted run (kill/checkpoint times anchored on the clean run's
// MapFinishTime) checked the same way; a wall-clock backend run —
// clean for fault-free cases (sixth leg), faulted for schedules both
// clocks can express (seventh leg) — checked against the same oracle;
// and, on one seed-picked platform, a rerun with a different
// worker-pool size whose Report must be DeepEqual to the base run's.
func RunCase(c Case) Verdict {
	c = c.Clone()
	c.Normalize()
	var v Verdict
	input := c.Input()
	oracle, err := oracleAnswer(&c, input)
	if err != nil {
		v.addf("oracle", "run", "%v", err)
		return v
	}
	for _, name := range c.Platforms {
		runPlatform(&v, &c, platformNames[name], input, oracle)
	}
	return v
}

// safeRun runs the spec, converting panics into errors so one broken
// case cannot abort a sweep.
func safeRun(spec engine.JobSpec) (rep *engine.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return engine.Run(spec)
}

func runPlatform(v *Verdict, c *Case, pl engine.Platform, input dfs.Input, oracle []string) {
	name := pl.String()
	clean, err := safeRun(c.jobSpec(pl, input, 1, false, 0))
	if err != nil {
		v.addf(name+"/clean", "run", "%v", err)
		return
	}
	checkAnswers(v, c, name+"/clean", clean, oracle)
	checkReport(v, c, name+"/clean", clean, false)

	// Sixth differential leg: the wall-clock backend, clean. Every
	// fault-free case must produce the same canonical answers on real
	// goroutines with an in-memory shuffle as the DES run and the
	// oracle.
	if !c.faulted() && c.ShufErrPct == 0 {
		checkRealBackend(v, c, name, pl, input, clean, oracle)
	}

	// Seventh differential leg: the wall-clock backend, faulted. Cases
	// whose schedule both clocks can express (everything except disk
	// damage) rerun on real goroutines with the kill translated to its
	// map-progress anchor plus the real-only transient shuffle errors;
	// recovery must leave the canonical answers bit-identical to the
	// oracle. HOP rejects fault plans on both substrates.
	if c.realFaultCompatible() && pl != engine.HOP {
		checkRealFaulted(v, c, name, pl, input, clean, oracle)
	}

	base, kind := clean, "clean"
	if c.faulted() {
		faulted, err := safeRun(c.jobSpec(pl, input, 1, true, clean.MapFinishTime))
		if err != nil {
			v.addf(name+"/faulted", "run", "%v", err)
			return
		}
		checkAnswers(v, c, name+"/faulted", faulted, oracle)
		checkReport(v, c, name+"/faulted", faulted, true)
		base, kind = faulted, "faulted"
	}

	// The cross-worker determinism check is the costliest (a full
	// rerun), so it runs on one seed-picked platform per case.
	if c.Workers2 > 1 && name == c.workerCheckPlatform() {
		spec := c.jobSpec(pl, input, c.Workers2, c.faulted(), clean.MapFinishTime)
		rep, err := safeRun(spec)
		if err != nil {
			v.addf(name+"/workers", "run", "workers=%d: %v", c.Workers2, err)
			return
		}
		a, b := *base, *rep
		a.Workers, a.WallTime = 0, 0
		b.Workers, b.WallTime = 0, 0
		if diff := engine.ReportDiff(&a, &b); diff != "" {
			v.addf(name+"/workers", "workers",
				"%s report with Workers=%d differs from serial run in field %s", kind, c.Workers2, diff)
		}
	}
}

// safeRunReal runs the spec on the wall-clock backend, converting
// panics into errors like safeRun.
func safeRunReal(spec realexec.Spec) (rep *engine.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return realexec.Run(spec)
}

// checkRealBackend runs the case on the wall-clock backend and holds
// its canonical answers to the oracle (and hence, transitively, to the
// DES clean run, already checked against the same oracle). Raw record
// counts are compared only where both substrates are bound to agree:
// early-emission re-counts depend on spill timing, which legitimately
// differs between interleaved DES execution and the real backend's
// map barrier, but input-side accounting and quarantine decisions are
// content-determined and must match exactly.
func checkRealBackend(v *Verdict, c *Case, name string, pl engine.Platform, input dfs.Input, clean *engine.Report, oracle []string) {
	label := name + "/real"
	workers := c.Workers2
	if workers < 1 {
		workers = 1
	}
	rep, err := safeRunReal(realexec.Spec{
		Job:      c.jobSpec(pl, input, 1, false, 0),
		NewQuery: func() mr.Query { return c.newQuery(false) },
		Workers:  workers,
	})
	if err != nil {
		v.addf(label, "run", "workers=%d: %v", workers, err)
		return
	}
	checkAnswers(v, c, label, rep, oracle)
	if rep.MapInputRecords != clean.MapInputRecords {
		v.addf(label, "accounting", "MapInputRecords=%d, DES run mapped %d",
			rep.MapInputRecords, clean.MapInputRecords)
	}
	if rep.QuarantinedRecords != clean.QuarantinedRecords {
		v.addf(label, "accounting", "QuarantinedRecords=%d, DES run quarantined %d",
			rep.QuarantinedRecords, clean.QuarantinedRecords)
	}
	if rep.DiskShuffleFetches != 0 {
		v.addf(label, "accounting", "in-memory shuffle served %d fetches from disk",
			rep.DiskShuffleFetches)
	}
	if rep.OutputRecords != int64(len(rep.Outputs)) {
		v.addf(label, "accounting", "OutputRecords=%d but %d records collected",
			rep.OutputRecords, len(rep.Outputs))
	}
	if rep.Workers != workers {
		v.addf(label, "accounting", "requested %d workers, report says %d", workers, rep.Workers)
	}
}

// checkRealFaulted runs the case's fault schedule on the wall-clock
// backend and holds the recovered answers to the oracle. Canonical
// answers must survive recovery bit-identically; raw input-side
// accounting is compared to the DES clean run only without kills
// (re-executed map attempts re-count their records, on both
// substrates); and the recovery counters must register exactly the
// dimensions the case injects — structural triggers make every
// counter except FetchRetries and SpeculativeWins deterministic, and
// those two are only checked for forbidden non-zero values.
func checkRealFaulted(v *Verdict, c *Case, name string, pl engine.Platform, input dfs.Input, clean *engine.Report, oracle []string) {
	label := name + "/real-faulted"
	workers := c.Workers2
	if workers < 1 {
		workers = 1
	}
	rep, err := safeRunReal(realexec.Spec{
		Job:      c.realJobSpec(pl, input, clean.MapFinishTime),
		NewQuery: func() mr.Query { return c.newQuery(false) },
		Workers:  workers,
	})
	if err != nil {
		v.addf(label, "run", "workers=%d: %v", workers, err)
		return
	}
	checkAnswers(v, c, label, rep, oracle)
	acct := func(format string, args ...any) { v.addf(label, "accounting", format, args...) }
	if c.KillFracPct == 0 && rep.MapInputRecords != clean.MapInputRecords {
		acct("no kills scheduled but MapInputRecords=%d, DES clean run mapped %d",
			rep.MapInputRecords, clean.MapInputRecords)
	}
	if rep.QuarantinedRecords != 0 {
		acct("faulted cases carry no poison but QuarantinedRecords=%d", rep.QuarantinedRecords)
	}
	if rep.DiskShuffleFetches != 0 {
		acct("in-memory shuffle served %d fetches from disk", rep.DiskShuffleFetches)
	}
	if rep.OutputRecords != int64(len(rep.Outputs)) {
		acct("OutputRecords=%d but %d records collected", rep.OutputRecords, len(rep.Outputs))
	}
	if rep.Workers != workers {
		acct("requested %d workers, report says %d", workers, rep.Workers)
	}

	// Recovery accounting: injected dimensions register, uninjected
	// ones stay exactly zero.
	if c.KillFracPct > 0 {
		if rep.NodesLost != 1 {
			acct("one node killed but NodesLost=%d", rep.NodesLost)
		}
	} else if rep.NodesLost != 0 || rep.ReExecutedMapTasks != 0 {
		acct("no kills scheduled but NodesLost=%d ReExecutedMapTasks=%d",
			rep.NodesLost, rep.ReExecutedMapTasks)
	}
	if len(c.ReduceFails) > 0 || c.KillFracPct > 0 {
		if rep.RestartedReduceTasks == 0 {
			acct("reduce restarts scheduled (fails=%d, killfrac=%d%%) but RestartedReduceTasks=0",
				len(c.ReduceFails), c.KillFracPct)
		}
	} else if rep.RestartedReduceTasks != 0 {
		acct("no reduce restarts scheduled but RestartedReduceTasks=%d", rep.RestartedReduceTasks)
	}
	if !c.Speculate && (rep.SpeculativeBackups != 0 || rep.SpeculativeWins != 0) {
		acct("speculation off but backups=%d wins=%d", rep.SpeculativeBackups, rep.SpeculativeWins)
	}
	if rep.SpeculativeWins > rep.SpeculativeBackups {
		acct("SpeculativeWins=%d > SpeculativeBackups=%d", rep.SpeculativeWins, rep.SpeculativeBackups)
	}
	if c.CheckpointDiv == 0 && (rep.Checkpoints != 0 || rep.CheckpointBytes != 0) {
		acct("checkpointing off but Checkpoints=%d CheckpointBytes=%d",
			rep.Checkpoints, rep.CheckpointBytes)
	}
	if c.ShufErrPct == 0 && c.KillFracPct == 0 && rep.FetchRetries != 0 {
		acct("no shuffle faults scheduled but FetchRetries=%d", rep.FetchRetries)
	}
}

// workerCheckPlatform picks which platform gets the cross-worker rerun
// — seed-derived so sweeps spread the cost across all five.
func (c *Case) workerCheckPlatform() string {
	if len(c.Platforms) == 0 {
		return ""
	}
	return c.Platforms[modInt(int(c.Seed>>8), len(c.Platforms))]
}

// oracleAnswer evaluates the reference oracle and canonicalizes its
// outputs for the case's query.
func oracleAnswer(c *Case, input dfs.Input) ([]string, error) {
	outs, _ := reference.RunWithWatermarks(c.newQuery(true), input)
	pairs := make([][2]string, len(outs))
	for i, o := range outs {
		pairs[i] = [2]string{o.Key, o.Value}
	}
	return canonOutputs(c, pairs)
}

// canonOutputs maps raw output records to the canonical comparison
// form for the case's query:
//
//   - exact key/value lines for one-shot aggregates (clickcount,
//     pagefreq);
//   - distinct keys for threshold queries (frequsers, trigram): early
//     emission fires when the threshold is crossed, so emitted counts
//     legitimately differ from the final totals, and a key whose
//     emitted state was spilled can be re-emitted by a later state
//     incarnation;
//   - per-key sums for windowcount: late records produce supplementary
//     emissions under allowed-lateness update semantics;
//   - session-id-stripped click lines for sessionization: bounded-
//     buffer streaming renumbers sessions, the clicks themselves and
//     their per-user grouping must match exactly.
func canonOutputs(c *Case, outs [][2]string) ([]string, error) {
	var lines []string
	switch c.Query {
	case "frequsers", "trigram":
		// Distinct keys: a key is re-emitted when an emitted state was
		// spilled and a later occurrence independently re-crossed the
		// threshold, so only the key set is platform-invariant.
		seen := map[string]bool{}
		for _, kv := range outs {
			if !seen[kv[0]] {
				seen[kv[0]] = true
				lines = append(lines, kv[0])
			}
		}
	case "windowcount":
		sums := map[string]int64{}
		var order []string
		for _, kv := range outs {
			n, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("non-integer windowcount value %q for key %q", kv[1], kv[0])
			}
			if _, ok := sums[kv[0]]; !ok {
				order = append(order, kv[0])
			}
			sums[kv[0]] += n
		}
		for _, k := range order {
			lines = append(lines, k+"\x00"+strconv.FormatInt(sums[k], 10))
		}
	case "sessionization":
		for _, kv := range outs {
			_, rec, _ := strings.Cut(kv[1], "\t")
			lines = append(lines, kv[0]+"\x00"+rec)
		}
	default:
		for _, kv := range outs {
			lines = append(lines, kv[0]+"\x00"+kv[1])
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// checkAnswers compares a run's canonicalized outputs to the oracle's.
func checkAnswers(v *Verdict, c *Case, label string, rep *engine.Report, oracle []string) {
	got, err := canonOutputs(c, rep.Outputs)
	if err != nil {
		v.addf(label, "oracle", "%v", err)
		return
	}
	if len(got) != len(oracle) {
		v.addf(label, "oracle", "platform emitted %d canonical outputs, oracle has %d%s",
			len(got), len(oracle), firstDiff(got, oracle))
		return
	}
	for i := range got {
		if got[i] != oracle[i] {
			v.addf(label, "oracle", "outputs diverge at %d/%d: got %q, oracle %q",
				i, len(got), got[i], oracle[i])
			return
		}
	}
}

// firstDiff describes the first element present in one sorted list but
// not the other — the record a count mismatch lost or invented.
func firstDiff(got, want []string) string {
	i, j := 0, 0
	for i < len(got) && j < len(want) {
		switch {
		case got[i] == want[j]:
			i++
			j++
		case got[i] < want[j]:
			return fmt.Sprintf(" (extra output %q)", got[i])
		default:
			return fmt.Sprintf(" (missing output %q)", want[j])
		}
	}
	if i < len(got) {
		return fmt.Sprintf(" (extra output %q)", got[i])
	}
	if j < len(want) {
		return fmt.Sprintf(" (missing output %q)", want[j])
	}
	return ""
}

// checkReport verifies the Report's accounting identities. faulted
// distinguishes the run kind: a clean run must show zeroed recovery
// and integrity counters; a faulted run must show zeros exactly for
// the fault dimensions the case does not inject.
func checkReport(v *Verdict, c *Case, label string, rep *engine.Report, faulted bool) {
	acct := func(format string, args ...any) { v.addf(label, "accounting", format, args...) }

	var byClass int64
	for _, b := range rep.ChecksumOverheadByClass {
		if b < 0 {
			acct("negative per-class checksum overhead: %v", rep.ChecksumOverheadByClass)
		}
		byClass += b
	}
	if rep.ChecksumOverheadBytes != byClass {
		acct("ChecksumOverheadBytes=%d != sum(ByClass)=%d", rep.ChecksumOverheadBytes, byClass)
	}
	if !c.Checksums {
		if rep.ChecksumOverheadBytes != 0 {
			acct("checksums off but ChecksumOverheadBytes=%d", rep.ChecksumOverheadBytes)
		}
		if rep.CorruptFramesDetected != 0 || rep.TornWritesRepaired != 0 {
			acct("checksums off but corrupt=%d torn=%d",
				rep.CorruptFramesDetected, rep.TornWritesRepaired)
		}
	}
	if rep.CorruptFramesDetected < rep.TornWritesRepaired {
		acct("CorruptFramesDetected=%d < TornWritesRepaired=%d",
			rep.CorruptFramesDetected, rep.TornWritesRepaired)
	}

	if !faulted {
		zero := func(what string, n int64) {
			if n != 0 {
				acct("clean run but %s=%d", what, n)
			}
		}
		zero("NodesLost", int64(rep.NodesLost))
		zero("ReExecutedMapTasks", int64(rep.ReExecutedMapTasks))
		zero("RestartedReduceTasks", int64(rep.RestartedReduceTasks))
		zero("SpeculativeBackups", int64(rep.SpeculativeBackups))
		zero("SpeculativeWins", int64(rep.SpeculativeWins))
		zero("FetchRetries", rep.FetchRetries)
		zero("WastedCPUPerNode", int64(rep.WastedCPUPerNode))
		zero("Checkpoints", rep.Checkpoints)
		zero("CheckpointBytes", rep.CheckpointBytes)
		zero("RecoveryReadBytes", rep.RecoveryReadBytes)
		zero("IORetries", rep.IORetries)
		zero("CorruptFramesDetected", rep.CorruptFramesDetected)
		zero("TornWritesRepaired", rep.TornWritesRepaired)
	} else {
		// Dimensions the case does not inject must stay exactly zero.
		if c.IOErrRate == 0 && rep.IORetries != 0 {
			acct("no transient errors injected but IORetries=%d", rep.IORetries)
		}
		if c.CorruptRate == 0 && !c.TornWrites && rep.CorruptFramesDetected != 0 {
			acct("no corruption injected but CorruptFramesDetected=%d", rep.CorruptFramesDetected)
		}
		if !c.TornWrites && rep.TornWritesRepaired != 0 {
			acct("no torn writes injected but TornWritesRepaired=%d", rep.TornWritesRepaired)
		}
		if c.KillFracPct == 0 && rep.NodesLost != 0 {
			acct("no kills scheduled but NodesLost=%d", rep.NodesLost)
		}
		if !c.Speculate && (rep.SpeculativeBackups != 0 || rep.SpeculativeWins != 0) {
			acct("speculation off but backups=%d wins=%d",
				rep.SpeculativeBackups, rep.SpeculativeWins)
		}
		if c.CheckpointDiv == 0 && (rep.Checkpoints != 0 || rep.CheckpointBytes != 0) {
			acct("checkpointing off but Checkpoints=%d CheckpointBytes=%d",
				rep.Checkpoints, rep.CheckpointBytes)
		}
		if rep.SpeculativeWins > rep.SpeculativeBackups {
			acct("SpeculativeWins=%d > SpeculativeBackups=%d",
				rep.SpeculativeWins, rep.SpeculativeBackups)
		}
	}

	// Node-combine accounting: the counters exist only when the case
	// switches the stage on (combine savings are legitimate on clean
	// runs — they are not recovery counters), the fold never inflates
	// the pair count, and the per-node shuffle attribution is shaped by
	// the cluster.
	if !c.NodeCombine &&
		(rep.NodeCombineInputRecords != 0 || rep.NodeCombineOutputRecords != 0 || rep.ShuffleBytesSaved != 0) {
		acct("node combining off but in=%d out=%d saved=%d",
			rep.NodeCombineInputRecords, rep.NodeCombineOutputRecords, rep.ShuffleBytesSaved)
	}
	if rep.NodeCombineOutputRecords > rep.NodeCombineInputRecords {
		acct("combine fold emitted more pairs than it absorbed: in=%d out=%d",
			rep.NodeCombineInputRecords, rep.NodeCombineOutputRecords)
	}
	if rep.ShuffleBytesSaved < 0 {
		acct("negative ShuffleBytesSaved=%d", rep.ShuffleBytesSaved)
	}
	if n := len(rep.ShuffleBytesByNode); n != 0 && n != c.Nodes {
		acct("ShuffleBytesByNode has %d entries on a %d-node cluster", n, c.Nodes)
	}
	for i, b := range rep.ShuffleBytesByNode {
		if b < 0 {
			acct("negative ShuffleBytesByNode[%d]=%d", i, b)
			break
		}
	}

	if !c.Poison && rep.QuarantinedRecords != 0 {
		acct("no poison records but QuarantinedRecords=%d", rep.QuarantinedRecords)
	}
	if rep.OutputRecords != int64(len(rep.Outputs)) {
		acct("OutputRecords=%d but %d records collected", rep.OutputRecords, len(rep.Outputs))
	}
	if rep.RunningTime <= 0 {
		acct("non-positive RunningTime %v", rep.RunningTime)
	}
	if rep.MapFinishTime <= 0 || rep.MapFinishTime > rep.RunningTime {
		acct("MapFinishTime %v outside (0, RunningTime=%v]", rep.MapFinishTime, rep.RunningTime)
	}
	if rep.InputBytes <= 0 || rep.MapInputRecords <= 0 {
		acct("no input accounted: InputBytes=%d MapInputRecords=%d",
			rep.InputBytes, rep.MapInputRecords)
	}
	if rep.Workers != 1 {
		acct("serial run reports Workers=%d", rep.Workers)
	}
	for i, s := range rep.Spans {
		if s.End < s.Start || s.Node < 0 || s.Node >= c.Nodes {
			v.addf(label, "accounting", "malformed span %d: %+v", i, s)
			break
		}
	}
	checkProgress(v, c, label, rep)
}

// checkProgress sanity-checks the Definition 1 progress curve: sample
// times strictly ordered and progress fractions within [0, 1]. (The
// fractions themselves may regress on faulted runs — restarted work
// lowers the completed fraction — so monotonicity is not asserted.)
func checkProgress(v *Verdict, c *Case, label string, rep *engine.Report) {
	lastT := time.Duration(-1)
	for i, p := range rep.Progress {
		if p.T < lastT {
			v.addf(label, "accounting", "progress point %d goes back in time: %v after %v",
				i, p.T, lastT)
			return
		}
		lastT = p.T
		if p.Map < 0 || p.Map > 1.0001 || p.Reduce < 0 || p.Reduce > 1.0001 {
			v.addf(label, "accounting", "progress point %d has map=%v reduce=%v outside [0,1]",
				i, p.Map, p.Reduce)
			return
		}
	}
}
