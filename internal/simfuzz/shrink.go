package simfuzz

import "reflect"

// shrinkStep is one candidate simplification; it mutates the case in
// place and reports whether anything changed.
type shrinkStep struct {
	name  string
	apply func(*Case) bool
}

// shrinkSteps are ordered: structural simplifications first (drop
// fault dimensions, drop the worker rerun), then input-size halving,
// then cluster shrinking, then relaxing knobs toward defaults. Each
// step is kept only if the shrunk case still fails, so the order is a
// search heuristic, not a correctness requirement.
var shrinkSteps = []shrinkStep{
	{"drop-disk", func(c *Case) bool {
		ch := c.IOErrRate != 0 || c.CorruptRate != 0 || c.TornWrites || len(c.DiskClasses) > 0
		c.IOErrRate, c.CorruptRate, c.TornWrites, c.DiskClasses = 0, 0, false, nil
		return ch
	}},
	{"drop-kill", func(c *Case) bool { ch := c.KillFracPct != 0; c.KillFracPct = 0; return ch }},
	{"drop-slow", func(c *Case) bool { ch := c.SlowFactor != 0; c.SlowFactor = 0; return ch }},
	{"drop-shuf-err", func(c *Case) bool { ch := c.ShufErrPct != 0; c.ShufErrPct = 0; return ch }},
	{"drop-speculate", func(c *Case) bool { ch := c.Speculate; c.Speculate = false; return ch }},
	{"drop-reduce-fails", func(c *Case) bool { ch := len(c.ReduceFails) > 0; c.ReduceFails = nil; return ch }},
	{"drop-map-fails", func(c *Case) bool { ch := len(c.MapFails) > 0; c.MapFails = nil; return ch }},
	{"halve-map-fails", func(c *Case) bool {
		if len(c.MapFails) < 2 {
			return false
		}
		c.MapFails = c.MapFails[:len(c.MapFails)/2]
		return true
	}},
	{"drop-checkpoint", func(c *Case) bool { ch := c.CheckpointDiv != 0; c.CheckpointDiv = 0; return ch }},
	{"drop-node-combine", func(c *Case) bool { ch := c.NodeCombine; c.NodeCombine = false; return ch }},
	{"drop-poison", func(c *Case) bool { ch := c.Poison; c.Poison = false; return ch }},
	{"drop-snapshot", func(c *Case) bool { ch := c.SnapshotEvery != 0; c.SnapshotEvery = 0; return ch }},
	{"drop-scan", func(c *Case) bool { ch := c.ScanEvery != 0; c.ScanEvery = 0; return ch }},
	{"checksums-off", func(c *Case) bool { ch := c.Checksums; c.Checksums = false; return ch }},
	{"drop-workers", func(c *Case) bool { ch := c.Workers2 != 0; c.Workers2 = 0; return ch }},
	{"halve-input", func(c *Case) bool {
		if c.InputKB <= 4 {
			return false
		}
		c.InputKB /= 2
		return true
	}},
	{"halve-users", func(c *Case) bool {
		if c.Users <= 8 {
			return false
		}
		c.Users /= 2
		return true
	}},
	{"halve-urls", func(c *Case) bool {
		if c.URLs <= 8 {
			return false
		}
		c.URLs /= 2
		return true
	}},
	{"halve-vocab", func(c *Case) bool {
		if c.Vocab <= 8 {
			return false
		}
		c.Vocab /= 2
		return true
	}},
	{"shrink-nodes", func(c *Case) bool {
		min := 1
		if c.KillFracPct > 0 {
			min = 2
		}
		if c.Nodes <= min {
			return false
		}
		c.Nodes--
		return true
	}},
	{"shrink-r", func(c *Case) bool {
		if c.R <= 1 {
			return false
		}
		c.R = 1
		return true
	}},
	{"shrink-slots", func(c *Case) bool {
		if c.MapSlots <= 1 && c.ReduceSlots <= 1 && c.Cores <= 1 {
			return false
		}
		c.MapSlots, c.ReduceSlots, c.Cores = 1, 1, 1
		return true
	}},
	{"default-merge-factor", func(c *Case) bool { ch := c.MergeFactor != 10; c.MergeFactor = 10; return ch }},
	{"default-buffers", func(c *Case) bool {
		ch := c.MapBufKB != 64 || c.ReduceBufKB != 64
		c.MapBufKB, c.ReduceBufKB = 64, 64
		return ch
	}},
	{"default-page", func(c *Case) bool { ch := c.PageB != 4096; c.PageB = 4096; return ch }},
	{"default-slotcache", func(c *Case) bool { ch := c.SlotCache != 8; c.SlotCache = 8; return ch }},
	{"default-replication", func(c *Case) bool { ch := c.Replication != 1; c.Replication = 1; return ch }},
	{"ssd-off", func(c *Case) bool { ch := c.SSD; c.SSD = false; return ch }},
	{"default-hints", func(c *Case) bool {
		ch := c.Km != 0.2 || c.DistinctKeys != 1024
		c.Km, c.DistinctKeys = 0.2, 1024
		return ch
	}},
	{"default-pad", func(c *Case) bool { ch := c.PadBytes != 0; c.PadBytes = 0; return ch }},
}

// Shrink greedily minimizes a failing case: every simplification step
// (and, first, restricting to a single platform) is kept only if the
// case still fails, looping to a fixpoint. budget caps the number of
// RunCase executions (each one runs full jobs); 0 means a default of
// 80. It returns the smallest still-failing case found and its
// verdict. If c does not fail, it is returned unchanged.
func Shrink(c Case, budget int) (Case, Verdict) {
	if budget <= 0 {
		budget = 80
	}
	best := c.Clone()
	best.Normalize()
	bestV := RunCase(best)
	if bestV.OK() {
		return best, bestV
	}
	runs := 1
	// try keeps cand as the new best if it (still) fails.
	try := func(cand Case) bool {
		cand.Normalize()
		if runs >= budget || reflect.DeepEqual(cand, best) {
			return false
		}
		runs++
		v := RunCase(cand)
		if v.OK() {
			return false
		}
		best, bestV = cand, v
		return true
	}
	for changed := true; changed && runs < budget; {
		changed = false
		// One platform is enough for a repro; try each in turn.
		if len(best.Platforms) > 1 {
			for _, p := range best.Platforms {
				cand := best.Clone()
				cand.Platforms = []string{p}
				if try(cand) {
					changed = true
					break
				}
			}
		}
		for _, step := range shrinkSteps {
			cand := best.Clone()
			if step.apply(&cand) && try(cand) {
				changed = true
			}
		}
	}
	return best, bestV
}
