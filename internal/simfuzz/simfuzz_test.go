package simfuzz

import (
	"os"
	"reflect"
	"strconv"
	"testing"
)

// TestGenDeterministic pins the generator contract every replay seed
// depends on: the same seed yields the same case, different seeds
// differ, and generated cases are already normalized (Normalize is a
// fixpoint).
func TestGenDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 9, 15, 42, 1 << 40} {
		a, b := Gen(seed), Gen(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Gen(%d) is not deterministic", seed)
		}
		n := a.Clone()
		n.Normalize()
		if !reflect.DeepEqual(a, n) {
			t.Errorf("Gen(%d) is not a Normalize fixpoint", seed)
		}
	}
	if reflect.DeepEqual(Gen(1), Gen(2)) {
		t.Error("Gen(1) == Gen(2): seeds do not vary the case")
	}
}

// sweepSize returns how many cases the randomized sweep runs: 200 in
// -short mode (the CI smoke), more otherwise, overridable with
// SIMFUZZ_CASES (and SIMFUZZ_SEED for the window start).
func sweepSize(t *testing.T) (first int64, n int) {
	first, n = 1, 500
	if testing.Short() {
		n = 200
	}
	if s := os.Getenv("SIMFUZZ_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad SIMFUZZ_CASES %q: %v", s, err)
		}
		n = v
	}
	if s := os.Getenv("SIMFUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SIMFUZZ_SEED %q: %v", s, err)
		}
		first = v
	}
	return first, n
}

// TestSweep is the randomized differential sweep: every generated case
// must agree with the reference oracle on every platform, satisfy the
// Report accounting identities, and replay identically across worker
// counts. On failure the case is shrunk and printed as a ready-to-run
// repro.
func TestSweep(t *testing.T) {
	if os.Getenv(MutationEnv) != "" {
		t.Skipf("%s is set; the sweep asserts the unmutated tree", MutationEnv)
	}
	first, n := sweepSize(t)
	failed := 0
	for i := 0; i < n; i++ {
		seed := first + int64(i)
		c := Gen(seed)
		v := RunCase(c)
		if v.OK() {
			continue
		}
		failed++
		shrunk, sv := Shrink(c, 80)
		t.Errorf("seed %d failed:\n%s\n\nshrunk repro:\n%s",
			seed, v.String(), RenderRepro(shrunk, sv, ""))
		if failed >= 3 {
			t.Fatalf("stopping the sweep after %d failing seeds", failed)
		}
	}
	t.Logf("swept %d cases starting at seed %d", n, first)
}

// TestMutationCheck proves the harness catches real bugs: with the
// planted spill off-by-one enabled (ONEPASS_MUTATION=spill-drop-run,
// a dropped sort-merge spill run), a pinned seed window must produce
// at least one failing case, and shrinking must keep it failing while
// reducing it to a single platform.
func TestMutationCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation scan is the long job's concern")
	}
	t.Setenv(MutationEnv, MutationSpillDropRun)
	for seed := int64(1); seed <= 30; seed++ {
		c := Gen(seed)
		v := RunCase(c)
		if v.OK() {
			continue
		}
		shrunk, sv := Shrink(c, 60)
		if sv.OK() {
			t.Fatalf("seed %d: shrink lost the failure", seed)
		}
		if len(shrunk.Platforms) != 1 {
			t.Errorf("seed %d: shrunk case still runs %d platforms", seed, len(shrunk.Platforms))
		}
		t.Logf("mutation caught at seed %d, shrunk to: %s", seed, sv.String())
		return
	}
	t.Fatal("planted mutation survived 30 seeds undetected — the harness is blind")
}

// TestCorpusReplay replays every committed corpus entry. Entries are
// shrunk repros of real bugs (must pass now) or planted-mutation cases
// (must fail while their mutation is enabled). Each entry is run twice
// and the verdicts must be identical: failure reporting itself has to
// be deterministic for replays to be debuggable.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus: testdata/corpus must hold the committed repros")
	}
	mutations := 0
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			t.Setenv(MutationEnv, e.Mutation)
			v1 := RunCase(e.Case)
			v2 := RunCase(e.Case)
			if !reflect.DeepEqual(v1, v2) {
				t.Fatalf("verdict is not deterministic:\nfirst:  %s\nsecond: %s", v1.String(), v2.String())
			}
			if v1.OK() == e.ExpectFailure {
				t.Fatalf("expect_failure=%v, got verdict:\n%s", e.ExpectFailure, v1.String())
			}
		})
		if e.Mutation != "" {
			mutations++
		}
	}
	if mutations == 0 {
		t.Error("corpus has no planted-mutation entry: the harness's bug-detection proof is missing")
	}
}
