package sortmerge

import "os"

// Planted mutations for the simfuzz mutation check: deliberately
// broken variants of the data path, compiled in but inert unless the
// ONEPASS_MUTATION environment variable names them. They exist to
// prove the randomized differential harness (internal/simfuzz)
// actually catches and minimizes real bugs — a test enables one and
// asserts the harness reports a caught, shrunk failure.
const (
	// MutationEnv is the environment variable naming the active planted
	// mutation ("" = none, the only production configuration).
	MutationEnv = "ONEPASS_MUTATION"

	// MutationSpillDropRun plants an off-by-one in the reduce-side
	// shuffle-spill merge: it walks bufRuns[:len-1] instead of all
	// buffered runs, silently losing the newest run's records whenever
	// the shuffle buffer spills holding more than one run. The answer
	// is wrong only under configurations where spills trigger with
	// multiple buffered segments — exactly the kind of
	// configuration-dependent bug the randomized sweep is for.
	MutationSpillDropRun = "spill-drop-run"
)

// mutationEnabled reports whether the named planted mutation is active.
func mutationEnabled(name string) bool { return os.Getenv(MutationEnv) == name }
