// Package sortmerge implements Hadoop's sort-merge data path (§2.2) —
// the baseline the paper's hash framework is measured against.
//
// Map side: output pairs accumulate in a buffer of size B_m tagged
// with their partition; the buffer is sorted on the compound
// (partition, key) — realized here by prefixing keys with a 2-byte
// partition id — and written as a spill. If a chunk's output exceeds
// the buffer (C·Km > B_m), external sorting kicks in: spills form a
// multi-pass merge tree (the U2 term of Proposition 3.1) whose final
// merge produces the single sorted, partitioned map output.
//
// Reduce side: sorted segments arrive from mappers into a shuffle
// buffer of size B_r; when it fills, the buffered runs are merged
// (applying the combine function if the query has one) and spilled.
// A background process multi-pass-merges the on-disk files (the U4
// term, and the blocking I/O bottleneck of Fig 2). After all map
// output arrives, a final merge streams each key group to the reduce
// function.
package sortmerge

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bytestore"
	"repro/internal/core"
	"repro/internal/kvenc"
	"repro/internal/merge"
	"repro/internal/mr"
	"repro/internal/storage"
	"repro/internal/substrate"
)

// appendPrefixKey appends the 2-byte big-endian partition id followed
// by the key, so one sort orders by (partition, key), as Hadoop does.
// Appending into a per-collector scratch buffer keeps the per-record
// collect path allocation-free (the encoded pair is copied into the
// collect buffer immediately, so reusing the scratch is safe).
func appendPrefixKey(dst []byte, part int, key []byte) []byte {
	dst = append(dst, byte(part>>8), byte(part))
	return append(dst, key...)
}

func splitPrefixed(pk []byte) (part int, key []byte) {
	return int(binary.BigEndian.Uint16(pk)), pk[2:]
}

// charger adapts a task runtime to merge.CPUCharger.
type charger struct{ rt *core.Runtime }

// ChargeMerge implements merge.CPUCharger: one pass over physRecords.
func (c charger) ChargeMerge(_ substrate.Proc, physRecords int64) {
	c.rt.ChargeOps(c.rt.Model.CPUMergeRecord, physRecords)
}

// MapCollectorConfig sizes the map-side collector.
type MapCollectorConfig struct {
	Prefix      string // names spill files (unique per task)
	Partitions  int    // R × nodes
	Buffer      int64  // B_m physical bytes
	MergeFactor int    // F
	ReadSegment int64
}

// MapCollector is the sort-merge Map Output Buffer component.
type MapCollector struct {
	rt  *core.Runtime
	cfg MapCollectorConfig
	h1  interface {
		Bucket(key []byte, n int) int
	}
	comb mr.Combiner

	buf     []byte
	bufRecs int64
	pk      []byte // prefixKey scratch, reused across Add calls
	tree    *merge.Tree

	mapped  int64
	emitted int64
}

// NewMapCollector creates the collector. If q implements mr.Combiner,
// the combine function is applied to each sorted spill.
func NewMapCollector(rt *core.Runtime, q mr.Query, cfg MapCollectorConfig) *MapCollector {
	c := &MapCollector{rt: rt, cfg: cfg, h1: rt.Fam.Fn(1)}
	if comb, ok := q.(mr.Combiner); ok {
		c.comb = comb
	}
	return c
}

// Add collects one map output pair.
func (c *MapCollector) Add(key, val []byte) {
	c.mapped++
	part := c.h1.Bucket(key, c.cfg.Partitions)
	c.pk = appendPrefixKey(c.pk[:0], part, key)
	c.buf = kvenc.AppendPair(c.buf, c.pk, val)
	c.bufRecs++
	if int64(len(c.buf)) >= c.cfg.Buffer {
		c.spill()
	}
}

// sortBuffer sorts (and combines) the current buffer into a run,
// built in a recycled buffer the caller hands back with bytestore.Put
// once the run's bytes are copied out or consumed. The sort runs
// sharded on the kernel's compute pool (bytewise identical to a
// serial sort); the virtual CPU charge is unchanged.
func (c *MapCollector) sortBuffer() []byte {
	sorted, n := c.rt.SortStreamTo(bytestore.Get(len(c.buf)), c.buf)
	c.rt.ChargeCPU(c.rt.Model.CPUSort(int64(n)))
	if c.comb != nil {
		combined := c.combineRun(sorted)
		bytestore.Put(sorted)
		sorted = combined
	}
	c.buf = c.buf[:0] // collect buffer is recycled in place
	c.bufRecs = 0
	return sorted
}

// combineRun applies the combine function to each (partition, key)
// group of a sorted run, producing a recycled buffer.
func (c *MapCollector) combineRun(run []byte) []byte {
	out := bytestore.Get(len(run))
	var records int64
	if err := kvenc.MergeGroupsChecked([][]byte{run}, func(pk []byte, vals kvenc.ValueIter) bool {
		_, key := splitPrefixed(pk)
		grp := &kvenc.CountingIter{Inner: vals}
		c.comb.Combine(key, grp, func(v []byte) {
			out = kvenc.AppendPair(out, pk, v)
		})
		records += grp.N
		return true
	}); err != nil {
		panic(fmt.Errorf("sortmerge: corrupt run in %s combine: %w", c.cfg.Prefix, err))
	}
	c.rt.ChargeOps(c.rt.Model.CPUCombine, records)
	return out
}

// spill externally sorts: the buffer becomes an on-disk sorted run in
// the map-side multi-pass merge tree (this is the C·Km > B_m case).
func (c *MapCollector) spill() {
	if c.tree == nil {
		c.tree = merge.NewTree(c.rt.Store, storage.MapSpill, c.cfg.Prefix, c.cfg.MergeFactor, c.cfg.ReadSegment)
	}
	run := c.sortBuffer()
	c.tree.AddRun(c.rt.P, run) // AddRun writes (copies) the run to disk
	bytestore.Put(run)
	for c.tree.NeedsMerge() {
		c.tree.MergeOnce(c.rt.P, charger{c.rt})
	}
}

// Finish sorts/merges everything and returns one sorted segment per
// partition plus (collected, emitted) record counts. SpilledBytes
// reports the map-internal spill (U2).
func (c *MapCollector) Finish() (parts [][][]byte, mapped, emitted int64) {
	var final []byte
	if c.tree == nil {
		final = c.sortBuffer()
	} else {
		if len(c.buf) > 0 {
			run := c.sortBuffer()
			c.tree.AddRun(c.rt.P, run)
			bytestore.Put(run)
		}
		c.tree.Complete(c.rt.P, charger{c.rt})
		runs := c.tree.FinalRuns(c.rt.P)
		var total int
		for _, r := range runs {
			total += len(r)
		}
		var err error
		final, err = kvenc.MergeStreamTo(bytestore.Get(total), runs)
		if err != nil {
			panic(fmt.Errorf("sortmerge: corrupt spill run in %s: %w", c.cfg.Prefix, err))
		}
		for _, r := range runs {
			bytestore.Put(r)
		}
		c.rt.ChargeOps(c.rt.Model.CPUMergeRecord, int64(kvenc.Count(final)))
	}
	parts = make([][][]byte, c.cfg.Partitions)
	segs := make([][]byte, c.cfg.Partitions)
	it := kvenc.NewIterator(final)
	for {
		pk, v, ok := it.Next()
		if !ok {
			break
		}
		part, key := splitPrefixed(pk)
		segs[part] = kvenc.AppendPair(segs[part], key, v)
		c.emitted++
	}
	if err := it.Err(); err != nil {
		panic(fmt.Errorf("sortmerge: corrupt final run in %s: %w", c.cfg.Prefix, err))
	}
	bytestore.Put(final) // per-partition segments copied out above
	for p, s := range segs {
		if len(s) > 0 {
			parts[p] = [][]byte{s}
		}
	}
	return parts, c.mapped, c.emitted
}

// SpilledBytes returns the map-internal spill bytes (0 if the chunk's
// output fit the buffer).
func (c *MapCollector) SpilledBytes() int64 {
	if c.tree == nil {
		return 0
	}
	return c.tree.SpilledBytes()
}

// ReducerConfig sizes the reduce side.
type ReducerConfig struct {
	Prefix      string
	Buffer      int64 // B_r physical bytes
	MergeFactor int   // F
	ReadSegment int64
}

// Reducer is the sort-merge reduce task: shuffle buffer, multi-pass
// merge tree, and the final merge feeding the reduce function.
type Reducer struct {
	rt   *core.Runtime
	q    mr.Query
	comb mr.Combiner
	cfg  ReducerConfig

	tree     *merge.Tree
	bufRuns  [][]byte
	bufBytes int64

	prepared  bool
	finalRuns [][]byte
	treeRuns  int // leading finalRuns entries that are recycled buffers

	received int64

	dropRunBug bool // planted MutationSpillDropRun (test-only, env-gated)
}

// NewReducer creates the reduce-side machinery. If q implements
// mr.Combiner the combine function is applied whenever the shuffle
// buffer is merged to a spill (§2.2).
func NewReducer(rt *core.Runtime, q mr.Query, cfg ReducerConfig) *Reducer {
	r := &Reducer{
		rt:   rt,
		q:    q,
		cfg:  cfg,
		tree: merge.NewTree(rt.Store, storage.ReduceSpill, cfg.Prefix, cfg.MergeFactor, cfg.ReadSegment),
	}
	if comb, ok := q.(mr.Combiner); ok {
		r.comb = comb
	}
	r.dropRunBug = mutationEnabled(MutationSpillDropRun)
	return r
}

// Consume accepts one sorted segment fetched from a mapper. Hadoop
// merges the shuffle buffer to disk when it reaches about two thirds
// of its capacity (mapred.job.shuffle.merge.percent = 0.66), not when
// completely full — that is what determines the number of initial
// on-disk runs n in the paper's λ analysis.
func (r *Reducer) Consume(run []byte) {
	if len(run) == 0 {
		return
	}
	r.received += int64(kvenc.Count(run))
	r.bufRuns = append(r.bufRuns, run)
	r.bufBytes += int64(len(run))
	if r.bufBytes*3 >= r.cfg.Buffer*2 {
		r.spillBuffer()
	}
}

// spillBuffer merges the buffered sorted pieces (combining if
// possible) and writes the result as one on-disk run.
func (r *Reducer) spillBuffer() {
	if len(r.bufRuns) == 0 {
		return
	}
	spillRuns := r.bufRuns
	if r.dropRunBug && len(spillRuns) > 1 {
		// Planted off-by-one (MutationSpillDropRun): the newest buffered
		// run is excluded from the spill merge and its records are lost.
		spillRuns = spillRuns[:len(spillRuns)-1]
	}
	run := bytestore.Get(int(r.bufBytes))
	var records int64
	if r.comb != nil {
		// Merge + combine in one pass; combined records count as
		// progress (Definition 1's "combine function completed").
		if err := kvenc.MergeGroupsChecked(spillRuns, func(key []byte, vals kvenc.ValueIter) bool {
			grp := &kvenc.CountingIter{Inner: vals}
			r.comb.Combine(key, grp, func(v []byte) {
				run = kvenc.AppendPair(run, key, v)
			})
			records += grp.N
			return true
		}); err != nil {
			panic(fmt.Errorf("sortmerge: corrupt shuffled run in %s: %w", r.cfg.Prefix, err))
		}
		r.rt.FnRecords(records)
		r.rt.ChargeOps(r.rt.Model.CPUCombine, records)
	} else {
		var err error
		run, err = kvenc.MergeStreamTo(run, spillRuns)
		if err != nil {
			panic(fmt.Errorf("sortmerge: corrupt shuffled run in %s: %w", r.cfg.Prefix, err))
		}
		records = int64(kvenc.Count(run))
	}
	r.rt.ChargeOps(r.rt.Model.CPUMergeRecord, records)
	r.tree.AddRun(r.rt.P, run) // AddRun writes (copies) the run to disk
	bytestore.Put(run)
	// The buffered runs are shuffle segments shared with the engine's
	// map-output table — drop the references, never recycle them.
	r.bufRuns = r.bufRuns[:0]
	r.bufBytes = 0
}

// Tree exposes the on-disk merge tree so the engine's background
// merger process can drive multi-pass merges while shuffling.
func (r *Reducer) Tree() *merge.Tree { return r.tree }

// Charger returns the CPU charger for background merges.
func (r *Reducer) Charger() merge.CPUCharger { return charger{r.rt} }

// SpilledBytes returns the reduce-internal spill (U4) written so far.
func (r *Reducer) SpilledBytes() int64 { return r.tree.SpilledBytes() }

// PrepareFinal completes the remaining multi-pass merge and reads the
// final runs back — the blocking, I/O-heavy step the paper's timelines
// attribute to the "merge" phase. It is separated from Finish so the
// engine can meter the two phases independently.
func (r *Reducer) PrepareFinal() {
	if r.prepared {
		return
	}
	r.prepared = true
	r.tree.Complete(r.rt.P, charger{r.rt})
	r.finalRuns = r.tree.FinalRuns(r.rt.P)
	r.treeRuns = len(r.finalRuns) // recyclable; the rest are shared shuffle segments
	r.finalRuns = append(r.finalRuns, r.bufRuns...)
	r.bufRuns = nil
}

// Finish performs the final merge that streams each key group to the
// reduce function — only now does the reduce function run, which is
// exactly the blocking behaviour the paper measures.
func (r *Reducer) Finish(out mr.OutputWriter) {
	r.PrepareFinal()
	runs := r.finalRuns
	r.finalRuns = nil
	var records int64
	batch := r.rt.Batch(r.rt.Model.CPUMergeRecord + r.rt.Model.CPUReduceRec)
	if err := kvenc.MergeGroupsChecked(runs, func(key []byte, vals kvenc.ValueIter) bool {
		grp := &kvenc.CountingIter{Inner: vals}
		r.q.Reduce(key, grp, out)
		records += grp.N
		batch.Add(grp.N)
		return true
	}); err != nil {
		panic(fmt.Errorf("sortmerge: corrupt final run in %s: %w", r.cfg.Prefix, err))
	}
	batch.Flush()
	r.rt.FnRecords(records)
	// Only the tree's own runs are recycled buffers; the trailing
	// entries alias shuffle segments owned by the engine.
	for _, run := range runs[:r.treeRuns] {
		bytestore.Put(run)
	}
	r.treeRuns = 0
}

// Snapshot merges everything received so far — re-reading the on-disk
// runs without consuming them — and applies the reduce function to the
// partial data, emitting an approximate snapshot (the MapReduce Online
// extension of §3.3(4)). Each call repeats the full merge, so frequent
// snapshots inflate I/O and running time, which is the paper's
// criticism of this approach to early answers.
func (r *Reducer) Snapshot(out mr.OutputWriter) {
	runs := r.tree.PeekRuns(r.rt.P)
	runs = append(runs, r.bufRuns...)
	var records int64
	batch := r.rt.Batch(r.rt.Model.CPUMergeRecord + r.rt.Model.CPUReduceRec)
	if err := kvenc.MergeGroupsChecked(runs, func(key []byte, vals kvenc.ValueIter) bool {
		grp := &kvenc.CountingIter{Inner: vals}
		r.q.Reduce(key, grp, out)
		records += grp.N
		batch.Add(grp.N)
		return true
	}); err != nil {
		panic(fmt.Errorf("sortmerge: corrupt run in %s snapshot: %w", r.cfg.Prefix, err))
	}
	batch.Flush()
}
