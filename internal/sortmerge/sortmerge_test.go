package sortmerge

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kvenc"
	"repro/internal/mr"
	"repro/internal/sim"
	"repro/internal/storage"
)

// sumQuery counts per key; implements Query and Combiner.
type sumQuery struct{}

func (sumQuery) Name() string { return "sum" }
func (sumQuery) Map(record []byte, emit func(k, v []byte)) {
	emit(record, []byte("1"))
}
func sum(values kvenc.ValueIter) int64 {
	var t int64
	for {
		v, ok := values.Next()
		if !ok {
			return t
		}
		n, _ := strconv.ParseInt(string(v), 10, 64)
		t += n
	}
}
func (sumQuery) Reduce(key []byte, values kvenc.ValueIter, out mr.OutputWriter) {
	out.Emit(key, []byte(strconv.FormatInt(sum(values), 10)))
}
func (sumQuery) Combine(key []byte, values kvenc.ValueIter, emit func(v []byte)) {
	emit([]byte(strconv.FormatInt(sum(values), 10)))
}

// rawOnly is the same query without a combine function.
type rawOnly struct{}

func (rawOnly) Name() string                         { return "raw" }
func (rawOnly) Map(r []byte, emit func(k, v []byte)) { emit(r, []byte("1")) }
func (rawOnly) Reduce(k []byte, v kvenc.ValueIter, out mr.OutputWriter) {
	out.Emit(k, []byte(strconv.FormatInt(sum(v), 10)))
}

func runSim(t *testing.T, fn func(rt *core.Runtime)) {
	t.Helper()
	k := sim.NewKernel()
	st := storage.NewStore(k, 0, cost.Default(1))
	k.Spawn("task", func(p *sim.Proc) { fn(core.NopRuntime(p, st, cost.Default(1))) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMapCollectorSingleSpill(t *testing.T) {
	runSim(t, func(rt *core.Runtime) {
		c := NewMapCollector(rt, rawOnly{}, MapCollectorConfig{
			Prefix: "m0", Partitions: 4, Buffer: 1 << 20, MergeFactor: 10,
		})
		for i := 0; i < 5000; i++ {
			c.Add([]byte(fmt.Sprintf("key%05d", i%700)), []byte("1"))
		}
		parts, mapped, emitted := c.Finish()
		if mapped != 5000 || emitted != 5000 {
			t.Fatalf("mapped=%d emitted=%d", mapped, emitted)
		}
		if c.SpilledBytes() != 0 {
			t.Fatal("spilled despite fitting buffer")
		}
		// Each partition: exactly one sorted segment, disjoint keys.
		seen := map[string]int{}
		for pi, segs := range parts {
			if len(segs) > 1 {
				t.Fatalf("partition %d has %d segments", pi, len(segs))
			}
			for _, seg := range segs {
				if !kvenc.IsSorted(seg) {
					t.Fatalf("partition %d not sorted", pi)
				}
				it := kvenc.NewIterator(seg)
				for {
					k, _, ok := it.Next()
					if !ok {
						break
					}
					if p, dup := seen[string(k)]; dup && p != pi {
						t.Fatalf("key %s in partitions %d and %d", k, p, pi)
					}
					seen[string(k)] = pi
				}
				if err := it.Err(); err != nil {
					t.Fatalf("corrupt segment: %v", err)
				}
			}
		}
		if len(seen) != 700 {
			t.Fatalf("distinct keys %d", len(seen))
		}
	})
}

func TestMapCollectorExternalSort(t *testing.T) {
	runSim(t, func(rt *core.Runtime) {
		c := NewMapCollector(rt, rawOnly{}, MapCollectorConfig{
			Prefix: "m0", Partitions: 2, Buffer: 8 << 10, MergeFactor: 3,
		})
		for i := 0; i < 8000; i++ {
			c.Add([]byte(fmt.Sprintf("key%06d", (i*7919)%5000)), []byte("1"))
		}
		parts, _, emitted := c.Finish()
		if emitted != 8000 {
			t.Fatalf("emitted=%d", emitted)
		}
		if c.SpilledBytes() == 0 {
			t.Fatal("expected external sort spills (C·Km > Bm)")
		}
		total := 0
		for _, segs := range parts {
			for _, seg := range segs {
				if !kvenc.IsSorted(seg) {
					t.Fatal("final output not sorted")
				}
				total += kvenc.Count(seg)
			}
		}
		if total != 8000 {
			t.Fatalf("total=%d", total)
		}
	})
}

func TestMapCollectorCombine(t *testing.T) {
	runSim(t, func(rt *core.Runtime) {
		c := NewMapCollector(rt, sumQuery{}, MapCollectorConfig{
			Prefix: "m0", Partitions: 2, Buffer: 1 << 20, MergeFactor: 10,
		})
		for i := 0; i < 6000; i++ {
			c.Add([]byte(fmt.Sprintf("key%02d", i%20)), []byte("1"))
		}
		parts, _, emitted := c.Finish()
		if emitted != 20 {
			t.Fatalf("emitted=%d, want 20 combined records", emitted)
		}
		var total int64
		for _, segs := range parts {
			for _, seg := range segs {
				it := kvenc.NewIterator(seg)
				for {
					_, v, ok := it.Next()
					if !ok {
						break
					}
					n, _ := strconv.ParseInt(string(v), 10, 64)
					total += n
				}
				if err := it.Err(); err != nil {
					t.Fatalf("corrupt segment: %v", err)
				}
			}
		}
		if total != 6000 {
			t.Fatalf("combined total %d", total)
		}
	})
}

// sortedRun builds a sorted encoded run from keys.
func sortedRun(keys []string) []byte {
	var raw []byte
	for _, k := range keys {
		raw = kvenc.AppendPair(raw, []byte(k), []byte("1"))
	}
	out, _ := kvenc.SortStream(raw)
	return out
}

type mapOut struct{ m map[string]int64 }

func (o *mapOut) Emit(k, v []byte) {
	n, _ := strconv.ParseInt(string(v), 10, 64)
	o.m[string(k)] += n
}

func TestReducerCorrectnessWithSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := map[string]int64{}
	runSim(t, func(rt *core.Runtime) {
		r := NewReducer(rt, rawOnly{}, ReducerConfig{
			Prefix: "r0", Buffer: 4 << 10, MergeFactor: 3,
		})
		for seg := 0; seg < 60; seg++ {
			var keys []string
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("key%04d", rng.Intn(900))
				keys = append(keys, k)
				want[k]++
			}
			r.Consume(sortedRun(keys))
			for r.Tree().NeedsMerge() {
				r.Tree().MergeOnce(rt.P, r.Charger())
			}
		}
		if r.SpilledBytes() == 0 {
			t.Fatal("expected shuffle-buffer spills")
		}
		out := &mapOut{m: map[string]int64{}}
		r.Finish(out)
		if len(out.m) != len(want) {
			t.Fatalf("keys %d vs %d", len(out.m), len(want))
		}
		for k, w := range want {
			if out.m[k] != w {
				t.Fatalf("key %s: %d want %d", k, out.m[k], w)
			}
		}
	})
}

func TestReducerCombinerShrinksSpill(t *testing.T) {
	feed := func(q mr.Query) (spilled int64, result map[string]int64) {
		runSim(t, func(rt *core.Runtime) {
			r := NewReducer(rt, q, ReducerConfig{Prefix: "r0", Buffer: 4 << 10, MergeFactor: 4})
			for seg := 0; seg < 50; seg++ {
				var keys []string
				for i := 0; i < 200; i++ {
					keys = append(keys, fmt.Sprintf("key%01d", i%8)) // heavy duplication
				}
				r.Consume(sortedRun(keys))
				for r.Tree().NeedsMerge() {
					r.Tree().MergeOnce(rt.P, r.Charger())
				}
			}
			out := &mapOut{m: map[string]int64{}}
			r.Finish(out)
			spilled, result = r.SpilledBytes(), out.m
		})
		return
	}
	spillComb, resComb := feed(sumQuery{})
	spillRaw, resRaw := feed(rawOnly{})
	if spillComb >= spillRaw {
		t.Fatalf("combiner did not shrink spill: %d vs %d", spillComb, spillRaw)
	}
	for k, v := range resRaw {
		if resComb[k] != v {
			t.Fatalf("combiner changed answer for %s: %d vs %d", k, resComb[k], v)
		}
	}
}

func TestReducerNoReduceBeforeFinish(t *testing.T) {
	// The defining SM property: the reduce function must not run until
	// Finish (blocking behaviour).
	runSim(t, func(rt *core.Runtime) {
		calls := 0
		rt.FnRecords = func(n int64) { calls += int(n) }
		r := NewReducer(rt, rawOnly{}, ReducerConfig{Prefix: "r0", Buffer: 1 << 20, MergeFactor: 4})
		for seg := 0; seg < 10; seg++ {
			r.Consume(sortedRun([]string{"a", "b", "c"}))
		}
		if calls != 0 {
			t.Fatal("reduce ran before finish without a combiner")
		}
		out := &mapOut{m: map[string]int64{}}
		r.Finish(out)
		if calls != 30 {
			t.Fatalf("fn records %d, want 30", calls)
		}
	})
}

func TestMapCollectorPartitionStability(t *testing.T) {
	// The same key must map to the same partition as in the hash
	// collector (both use family function 1), so platforms are
	// interchangeable reducer-side.
	runSim(t, func(rt *core.Runtime) {
		sm := NewMapCollector(rt, rawOnly{}, MapCollectorConfig{
			Prefix: "a", Partitions: 8, Buffer: 1 << 20, MergeFactor: 10,
		})
		hash := core.NewHashMapCollector(rt, rawOnly{}, 8, 1<<20, false)
		for i := 0; i < 500; i++ {
			k := []byte(fmt.Sprintf("key%04d", i))
			sm.Add(k, []byte("1"))
			hash.Add(k, []byte("1"))
		}
		smParts, _, _ := sm.Finish()
		hashParts, _, _ := hash.Finish()
		partOf := func(parts [][][]byte) map[string]int {
			m := map[string]int{}
			for pi, segs := range parts {
				for _, seg := range segs {
					it := kvenc.NewIterator(seg)
					for {
						k, _, ok := it.Next()
						if !ok {
							break
						}
						m[string(k)] = pi
					}
					if err := it.Err(); err != nil {
						t.Fatalf("corrupt segment: %v", err)
					}
				}
			}
			return m
		}
		a, b := partOf(smParts), partOf(hashParts)
		for k, p := range a {
			if b[k] != p {
				t.Fatalf("key %s: SM partition %d, hash partition %d", k, p, b[k])
			}
		}
	})
}

func TestSnapshotApproximatesWithoutDisturbing(t *testing.T) {
	// §3.3(4): a snapshot merges everything received so far and applies
	// reduce to partial data; the final answer afterwards is unchanged.
	runSim(t, func(rt *core.Runtime) {
		r := NewReducer(rt, rawOnly{}, ReducerConfig{Prefix: "r0", Buffer: 2 << 10, MergeFactor: 3})
		want := map[string]int64{}
		feed := func(n int) {
			var keys []string
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key%02d", i%10)
				keys = append(keys, k)
				want[k]++
			}
			r.Consume(sortedRun(keys))
			for r.Tree().NeedsMerge() {
				r.Tree().MergeOnce(rt.P, r.Charger())
			}
		}
		feed(100)
		snap := &mapOut{m: map[string]int64{}}
		r.Snapshot(snap)
		if len(snap.m) != 10 {
			t.Fatalf("snapshot keys %d", len(snap.m))
		}
		if snap.m["key00"] != 10 {
			t.Fatalf("snapshot partial count %d, want 10", snap.m["key00"])
		}
		feed(100) // more data after the snapshot
		out := &mapOut{m: map[string]int64{}}
		r.Finish(out)
		for k, w := range want {
			if out.m[k] != w {
				t.Fatalf("final %s=%d want %d (snapshot disturbed state)", k, out.m[k], w)
			}
		}
	})
}
