// Package storage simulates per-node storage devices.
//
// Every file (map spill, map output, reduce bucket/spill, job output)
// is held in memory with real bytes, while reads and writes charge
// virtual time on the node's disk-arm resource using the cost model
// (seek + bytes/bandwidth) and increment per-I/O-class byte counters.
// The five classes mirror Table 2 of the paper (U = U1+…+U5): map
// input, map internal spills, map output, reduce internal spills, and
// reduce output; shuffle disk reads are tracked separately since the
// paper attributes them to the shuffle phase rather than U.
//
// A node owns an HDD and an SSD device (paper §2.3 hardware); the
// placement policy decides which I/O classes go to which device, which
// is how the Fig 2(d) "intermediate data on SSD" experiment is
// expressed.
package storage

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/substrate"
)

// IOClass labels every byte moved through a disk.
type IOClass int

// I/O classes. The first five are the paper's U1..U5.
const (
	MapInput     IOClass = iota // U1: reading job input
	MapSpill                    // U2: map-side external-sort spills
	MapOutput                   // U3: final map output written for fault tolerance
	ReduceSpill                 // U4: reduce-side merge/bucket spills
	ReduceOutput                // U5: job output
	ShuffleRead                 // shuffle fetches served from disk (2nd-wave reducers)
	Checkpoint                  // reducer-state checkpoints (writes) and restores (reads)
	NumIOClasses
)

// String returns the class name.
func (c IOClass) String() string {
	switch c {
	case MapInput:
		return "map-input"
	case MapSpill:
		return "map-spill"
	case MapOutput:
		return "map-output"
	case ReduceSpill:
		return "reduce-spill"
	case ReduceOutput:
		return "reduce-output"
	case ShuffleRead:
		return "shuffle-read"
	case Checkpoint:
		return "checkpoint"
	}
	return "io?"
}

// Counters accumulates physical bytes and request counts per class.
// ReadBytes/WrittenBytes are payload bytes only; OverheadBytes holds
// the checksum-framing bytes moved on top of them (zero when
// checksums are off), so every pre-existing payload comparison is
// unchanged by enabling integrity.
type Counters struct {
	ReadBytes     [NumIOClasses]int64
	WrittenBytes  [NumIOClasses]int64
	ReadReqs      [NumIOClasses]int64
	WriteReqs     [NumIOClasses]int64
	OverheadBytes [NumIOClasses]int64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	for i := 0; i < int(NumIOClasses); i++ {
		c.ReadBytes[i] += o.ReadBytes[i]
		c.WrittenBytes[i] += o.WrittenBytes[i]
		c.ReadReqs[i] += o.ReadReqs[i]
		c.WriteReqs[i] += o.WriteReqs[i]
		c.OverheadBytes[i] += o.OverheadBytes[i]
	}
}

// TotalOverheadBytes returns the checksum-framing bytes across all
// classes.
func (c *Counters) TotalOverheadBytes() int64 {
	var t int64
	for i := 0; i < int(NumIOClasses); i++ {
		t += c.OverheadBytes[i]
	}
	return t
}

// TotalBytes returns all bytes read plus written (the model's U, plus
// shuffle reads).
func (c *Counters) TotalBytes() int64 {
	var t int64
	for i := 0; i < int(NumIOClasses); i++ {
		t += c.ReadBytes[i] + c.WrittenBytes[i]
	}
	return t
}

// TotalReqs returns the total number of I/O requests (the model's S,
// plus shuffle reads).
func (c *Counters) TotalReqs() int64 {
	var t int64
	for i := 0; i < int(NumIOClasses); i++ {
		t += c.ReadReqs[i] + c.WriteReqs[i]
	}
	return t
}

// frameSpan is the checksum metadata of one logical frame of a file:
// the payload's byte range and the CRC32C its frame carries. The file
// holds payload bytes unframed (offsets inside intermediate files are
// load-bearing); the header/trailer bytes exist only as a charged
// overhead, the way a block store keeps checksums in a side file.
type frameSpan struct {
	off, end int64
	crc      uint32
}

// File is a named byte file on one device of one node.
type File struct {
	name   string
	dev    cost.Device
	data   []byte
	frames []frameSpan // populated per write when checksums are on
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the current physical size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Data returns the raw contents without charging I/O. Use only for
// assertions and for memory-resident access paths that are explicitly
// free (e.g. shuffle served from the mapper's memory).
func (f *File) Data() []byte { return f.data }

// Corruption is panicked by verified reads whose checksum fails and
// by exhausted transient-I/O retry budgets. Like the engine's
// node-abort panic, attempt runners recover it at attempt boundaries
// and restart; it must never escape into the kernel on recoverable
// paths.
type Corruption struct {
	Node  int
	File  string
	Class IOClass
	Kind  string // "checksum" or "io"
}

// Error implements error.
func (c *Corruption) Error() string {
	return fmt.Sprintf("storage: %s fault on node %d, file %q (%s)", c.Kind, c.Node, c.File, c.Class)
}

// DiskFaults configures deterministic disk-fault injection on one
// store. All decisions are drawn from Hash64 over (Seed, node,
// per-store sequence); the sequence only advances inside proc-context
// I/O calls, which the kernel serializes, so injected faults land at
// identical points for any worker-pool size.
type DiskFaults struct {
	Seed int64
	// IOErrorRate is the per-request probability of a transient I/O
	// error: the request costs a seek, backs off, and is retried
	// (bounded), invisibly to the caller except in virtual time.
	IOErrorRate float64
	// CorruptRate is the per-frame probability that a write is
	// persisted with one flipped bit — detected by checksum
	// verification on the next read of that frame.
	CorruptRate float64
	// Classes masks which I/O classes are targeted.
	Classes [NumIOClasses]bool
	// From/To bound the injection window in virtual nanoseconds;
	// To == 0 means no upper bound.
	From, To int64
}

func (d *DiskFaults) window(now int64) bool {
	return now >= d.From && (d.To == 0 || now < d.To)
}

// Transient-I/O retry policy: exponential backoff from base to cap;
// exhausting the budget escalates to a Corruption("io") panic. At
// validated rates (< 0.5) exhaustion is a ~1e-4-or-rarer event per
// request, and recoverable wherever checksum corruption is.
const (
	ioRetryBase = 20 * time.Millisecond
	ioRetryCap  = 2 * time.Second
	maxIOTries  = 12
)

// Hash64 deterministically mixes identifiers into a uniform 64-bit
// value (iterated splitmix64): the basis of every fault-injection
// decision here and in the engine, so faulted runs are exactly
// reproducible.
func Hash64(vals ...int64) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		x += uint64(v) ^ 0xBF58476D1CE4E5B9
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
	}
	return x
}

// hit converts a hash draw into a probability-rate decision.
func hit(h uint64, rate float64) bool {
	return rate > 0 && h < uint64(rate*float64(math.MaxUint64))
}

// Roll draws one deterministic fault decision — true with probability
// rate — from Hash64 over the identifying values. The engine uses it
// for injections the store never sees (checkpoint images travel
// engine-side).
func Roll(rate float64, vals ...int64) bool { return hit(Hash64(vals...), rate) }

// Store is one node's storage: two devices sharing nothing, each a
// substrate.Timer — on the DES a capacity-1 sim resource (one
// outstanding request at a time, FIFO), on the real backend a plain
// busy-time accumulator.
type Store struct {
	node     int
	model    cost.Model
	arms     [2]substrate.Timer
	counters Counters
	files    map[string]*File
	// Intermediate decides the device for intermediate data (spills,
	// map output). Input/output (HDFS) always use the HDD, as in the
	// paper's SSD experiment.
	Intermediate cost.Device
	liveBytes    int64

	// SlowFactor > 1 stretches every seek and transfer on this node's
	// devices by that multiple — the disk half of a straggler node
	// (FaultPlan.SlowNodes). 0 or 1 means nominal speed.
	SlowFactor float64

	// Checksums enables the end-to-end frame layer: every write
	// records CRC32C frame metadata and every read re-verifies the
	// frames it touches, with the framing bytes charged as overhead.
	// Off (the default), no metadata is kept and no byte is charged —
	// the store behaves identically to the pre-integrity code.
	Checksums bool

	faults        *DiskFaults
	faultSeq      int64
	ioRetries     int64
	corruptFrames int64
}

// NewStore creates a node-local store on the DES substrate: the
// device arms are FIFO sim resources and every request parks the
// calling process for its charged service time.
func NewStore(k *sim.Kernel, node int, model cost.Model) *Store {
	return &Store{
		node:  node,
		model: model,
		arms: [2]substrate.Timer{
			sim.NewResource(k, fmt.Sprintf("n%d.hdd", node), 1),
			sim.NewResource(k, fmt.Sprintf("n%d.ssd", node), 1),
		},
		files:        make(map[string]*File),
		Intermediate: cost.HDD,
	}
}

// NewWallStore creates a node-local store on the wall-clock substrate:
// the device arms accumulate the charged virtual time without delaying
// the caller. A store is single-goroutine (the real backend gives each
// task its own), so the counters need no locking.
func NewWallStore(node int, model cost.Model) *Store {
	return &Store{
		node:  node,
		model: model,
		arms: [2]substrate.Timer{
			substrate.NewWallTimer(),
			substrate.NewWallTimer(),
		},
		files:        make(map[string]*File),
		Intermediate: cost.HDD,
	}
}

// Counters returns a pointer to the store's counters (live view).
func (s *Store) Counters() *Counters { return &s.counters }

// SetFaults installs a disk-fault plan on this store (nil disables).
func (s *Store) SetFaults(f *DiskFaults) { s.faults = f }

// IORetries returns how many transient I/O errors were injected and
// retried on this store.
func (s *Store) IORetries() int64 { return s.ioRetries }

// CorruptFramesDetected returns how many frame verifications failed
// on this store (re-reads of a corrupt frame count again).
func (s *Store) CorruptFramesDetected() int64 { return s.corruptFrames }

// NoteOverhead records framing overhead accounted by a caller that
// moves framed bytes the store never holds (checkpoint images).
func (s *Store) NoteOverhead(class IOClass, n int64) {
	s.counters.OverheadBytes[class] += n
}

// Arm returns the device's timer (for metrics sampling).
func (s *Store) Arm(dev cost.Device) substrate.Timer { return s.arms[dev] }

// LiveBytes returns the physical bytes currently held in files.
func (s *Store) LiveBytes() int64 { return s.liveBytes }

// deviceFor maps an I/O class to a device under the placement policy.
func (s *Store) deviceFor(class IOClass) cost.Device {
	switch class {
	case MapInput, ReduceOutput, Checkpoint:
		return cost.HDD
	default:
		return s.Intermediate
	}
}

// Create makes an empty file for the given class's device. Names must
// be unique per store.
func (s *Store) Create(name string, class IOClass) *File {
	if _, dup := s.files[name]; dup {
		panic("storage: duplicate file " + name)
	}
	f := &File{name: name, dev: s.deviceFor(class)}
	s.files[name] = f
	return f
}

// Delete removes a file and frees its memory.
func (s *Store) Delete(f *File) {
	s.liveBytes -= int64(len(f.data))
	delete(s.files, f.name)
	f.data = nil
	f.frames = nil
}

// Append writes data to the end of f as a single request (one frame),
// charging seek + transfer on the device arm.
func (s *Store) Append(p substrate.Proc, f *File, data []byte, class IOClass) {
	s.AppendFrames(p, f, data, class, nil)
}

// AppendFrames writes data to the end of f as a single request but,
// when checksums are on, records one frame per given segment length
// (writev-style): partition regions of a map-output file stay
// individually verifiable without extra write requests. lens must sum
// to len(data); nil means one frame covering all of data. Zero-length
// segments record no frame.
func (s *Store) AppendFrames(p substrate.Proc, f *File, data []byte, class IOClass, lens []int64) {
	var ovh int64
	if s.Checksums {
		if lens == nil {
			lens = []int64{int64(len(data))}
		}
		off := int64(len(f.data))
		pos := int64(0)
		for _, ln := range lens {
			if ln <= 0 {
				continue
			}
			seg := data[pos : pos+ln]
			f.frames = append(f.frames, frameSpan{off: off + pos, end: off + pos + ln, crc: frame.Checksum(seg)})
			ovh += frame.Overhead(len(seg))
			pos += ln
		}
		if pos != int64(len(data)) {
			panic(fmt.Sprintf("storage: frame lengths cover %d of %d bytes in %s", pos, len(data), f.name))
		}
		s.counters.OverheadBytes[class] += ovh
	}
	s.request(p, f, f.dev, int64(len(data))+ovh, class)
	prev := int64(len(f.data))
	f.data = append(f.data, data...)
	s.liveBytes += int64(len(data))
	s.counters.WrittenBytes[class] += int64(len(data))
	s.counters.WriteReqs[class]++
	// Bit-flip corruption: the frame CRCs above were computed over the
	// clean bytes, so the flip (into f.data's own backing, never the
	// caller's slice) is caught by the next read that verifies the
	// damaged frame.
	if fl := s.faults; fl != nil && s.Checksums && len(data) > 0 &&
		fl.Classes[class] && fl.window(p.Now()) {
		s.faultSeq++
		if hit(Hash64(fl.Seed, int64(s.node), s.faultSeq, 1), fl.CorruptRate) {
			bit := Hash64(fl.Seed, int64(s.node), s.faultSeq, 2) % uint64(len(data)*8)
			f.data[prev+int64(bit/8)] ^= 1 << (bit % 8)
		}
	}
}

// verifySpans re-verifies every frame overlapping [off, end) and
// returns the framing bytes those frames carry. Edge frames are
// verified whole (their payload is memory-resident); only the
// header/trailer bytes are charged, the interior re-read being
// absorbed by the read buffer.
func (s *Store) verifySpans(f *File, off, end int64) (ovh int64, err error) {
	i := sort.Search(len(f.frames), func(i int) bool { return f.frames[i].end > off })
	for ; i < len(f.frames) && f.frames[i].off < end; i++ {
		sp := f.frames[i]
		ovh += frame.Overhead(int(sp.end - sp.off))
		if frame.Checksum(f.data[sp.off:sp.end]) != sp.crc {
			s.corruptFrames++
			err = frame.ErrCorrupt
		}
	}
	return ovh, err
}

// ReadAt reads n bytes at off from f as a single request, verifying
// the frames it touches when checksums are on. Checksum failure
// panics Corruption: internal read paths (spills, buckets, merges)
// recover it at attempt boundaries and restart.
func (s *Store) ReadAt(p substrate.Proc, f *File, off, n int64, class IOClass) []byte {
	b, err := s.ReadAtChecked(p, f, off, n, class)
	if err != nil {
		panic(&Corruption{Node: s.node, File: f.name, Class: class, Kind: "checksum"})
	}
	return b
}

// ReadAtChecked is ReadAt returning frame.ErrCorrupt instead of
// panicking — for callers with a gentler recovery than an attempt
// restart (the shuffle re-fetches, then re-executes the map task).
// The full request is charged either way: the bytes moved before the
// mismatch was noticed.
func (s *Store) ReadAtChecked(p substrate.Proc, f *File, off, n int64, class IOClass) ([]byte, error) {
	if off+n > int64(len(f.data)) {
		panic(fmt.Sprintf("storage: read past EOF of %s (%d+%d > %d)", f.name, off, n, len(f.data)))
	}
	var ovh int64
	var verr error
	if s.Checksums {
		ovh, verr = s.verifySpans(f, off, off+n)
		s.counters.OverheadBytes[class] += ovh
	}
	s.request(p, f, f.dev, n+ovh, class)
	s.counters.ReadBytes[class] += n
	s.counters.ReadReqs[class]++
	if verr != nil {
		return nil, verr
	}
	return f.data[off : off+n : off+n], nil
}

// VerifyFile re-verifies every frame of f without charging I/O, and
// panics Corruption on a mismatch. Checkpointing calls it before
// folding a file's memory-resident bytes into a state image, so disk
// corruption cannot be laundered into a freshly-checksummed
// checkpoint.
func (s *Store) VerifyFile(f *File, class IOClass) {
	if !s.Checksums {
		return
	}
	if _, err := s.verifySpans(f, 0, int64(len(f.data))); err != nil {
		panic(&Corruption{Node: s.node, File: f.name, Class: class, Kind: "checksum"})
	}
}

// ReadAll reads the whole file in requests of at most segment physical
// bytes, modelling a bounded read buffer. segment ≤ 0 means one
// request.
func (s *Store) ReadAll(p substrate.Proc, f *File, segment int64, class IOClass) []byte {
	size := int64(len(f.data))
	if segment <= 0 || segment >= size {
		if size == 0 {
			return nil
		}
		return s.ReadAt(p, f, 0, size, class)
	}
	for off := int64(0); off < size; off += segment {
		n := segment
		if off+n > size {
			n = size - off
		}
		s.ReadAt(p, f, off, n, class)
	}
	return f.data
}

// ChargeInputRead accounts for reading job input that is generated on
// the fly rather than stored (the DFS synthesizes chunk bytes): it
// charges the HDD arm and the MapInput counters without touching any
// file.
func (s *Store) ChargeInputRead(p substrate.Proc, physBytes int64) {
	s.request(p, nil, cost.HDD, physBytes, MapInput)
	s.counters.ReadBytes[MapInput] += physBytes
	s.counters.ReadReqs[MapInput]++
}

// ChargeOutputWrite accounts for job output written back to the DFS
// without retaining the bytes.
func (s *Store) ChargeOutputWrite(p substrate.Proc, physBytes int64) {
	s.request(p, nil, cost.HDD, physBytes, ReduceOutput)
	s.counters.WrittenBytes[ReduceOutput] += physBytes
	s.counters.WriteReqs[ReduceOutput]++
}

// ChargeCheckpointWrite accounts for writing physBytes of reducer
// checkpoint state. Like ChargeOutputWrite the bytes are not retained:
// the checkpoint is modelled as replicated off-node (it must survive
// the node), so the engine keeps the recoverable image itself and the
// store only charges the local write leg.
func (s *Store) ChargeCheckpointWrite(p substrate.Proc, physBytes int64) {
	if physBytes <= 0 {
		return
	}
	s.request(p, nil, cost.HDD, physBytes, Checkpoint)
	s.counters.WrittenBytes[Checkpoint] += physBytes
	s.counters.WriteReqs[Checkpoint]++
}

// ChargeCheckpointRead accounts for a restarted reducer reading back
// physBytes of checkpoint state onto this node.
func (s *Store) ChargeCheckpointRead(p substrate.Proc, physBytes int64) {
	if physBytes <= 0 {
		return
	}
	s.request(p, nil, cost.HDD, physBytes, Checkpoint)
	s.counters.ReadBytes[Checkpoint] += physBytes
	s.counters.ReadReqs[Checkpoint]++
}

// request occupies the device arm for one I/O request of physBytes,
// first rolling for injected transient I/O errors: a failed attempt
// costs a seek, backs off with exponential delay, and retries;
// exhausting the budget escalates to Corruption("io"), recovered at
// attempt boundaries like a checksum failure. f may be nil
// (charge-only requests with no retained file).
func (s *Store) request(p substrate.Proc, f *File, dev cost.Device, physBytes int64, class IOClass) {
	if fl := s.faults; fl != nil && fl.IOErrorRate > 0 && fl.Classes[class] {
		backoff := ioRetryBase
		for try := 1; fl.window(p.Now()); try++ {
			s.faultSeq++
			if !hit(Hash64(fl.Seed, int64(s.node), s.faultSeq, 0), fl.IOErrorRate) {
				break
			}
			s.ioRetries++
			s.armUse(p, dev, s.model.SeekTime(dev)) // the failed attempt still seeks
			if try >= maxIOTries {
				name := ""
				if f != nil {
					name = f.name
				}
				panic(&Corruption{Node: s.node, File: name, Class: class, Kind: "io"})
			}
			p.Hold(backoff)
			if backoff *= 2; backoff > ioRetryCap {
				backoff = ioRetryCap
			}
		}
	}
	s.armUse(p, dev, s.model.SeekTime(dev)+s.model.TransferTime(dev, physBytes))
}

// armUse occupies the device arm for d (stretched on slow nodes).
func (s *Store) armUse(p substrate.Proc, dev cost.Device, d time.Duration) {
	if s.SlowFactor > 1 {
		d = time.Duration(float64(d) * s.SlowFactor)
	}
	s.arms[dev].Use(p, 1, d)
}
