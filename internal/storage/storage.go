// Package storage simulates per-node storage devices.
//
// Every file (map spill, map output, reduce bucket/spill, job output)
// is held in memory with real bytes, while reads and writes charge
// virtual time on the node's disk-arm resource using the cost model
// (seek + bytes/bandwidth) and increment per-I/O-class byte counters.
// The five classes mirror Table 2 of the paper (U = U1+…+U5): map
// input, map internal spills, map output, reduce internal spills, and
// reduce output; shuffle disk reads are tracked separately since the
// paper attributes them to the shuffle phase rather than U.
//
// A node owns an HDD and an SSD device (paper §2.3 hardware); the
// placement policy decides which I/O classes go to which device, which
// is how the Fig 2(d) "intermediate data on SSD" experiment is
// expressed.
package storage

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/sim"
)

// IOClass labels every byte moved through a disk.
type IOClass int

// I/O classes. The first five are the paper's U1..U5.
const (
	MapInput     IOClass = iota // U1: reading job input
	MapSpill                    // U2: map-side external-sort spills
	MapOutput                   // U3: final map output written for fault tolerance
	ReduceSpill                 // U4: reduce-side merge/bucket spills
	ReduceOutput                // U5: job output
	ShuffleRead                 // shuffle fetches served from disk (2nd-wave reducers)
	Checkpoint                  // reducer-state checkpoints (writes) and restores (reads)
	NumIOClasses
)

// String returns the class name.
func (c IOClass) String() string {
	switch c {
	case MapInput:
		return "map-input"
	case MapSpill:
		return "map-spill"
	case MapOutput:
		return "map-output"
	case ReduceSpill:
		return "reduce-spill"
	case ReduceOutput:
		return "reduce-output"
	case ShuffleRead:
		return "shuffle-read"
	case Checkpoint:
		return "checkpoint"
	}
	return "io?"
}

// Counters accumulates physical bytes and request counts per class.
type Counters struct {
	ReadBytes    [NumIOClasses]int64
	WrittenBytes [NumIOClasses]int64
	ReadReqs     [NumIOClasses]int64
	WriteReqs    [NumIOClasses]int64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	for i := 0; i < int(NumIOClasses); i++ {
		c.ReadBytes[i] += o.ReadBytes[i]
		c.WrittenBytes[i] += o.WrittenBytes[i]
		c.ReadReqs[i] += o.ReadReqs[i]
		c.WriteReqs[i] += o.WriteReqs[i]
	}
}

// TotalBytes returns all bytes read plus written (the model's U, plus
// shuffle reads).
func (c *Counters) TotalBytes() int64 {
	var t int64
	for i := 0; i < int(NumIOClasses); i++ {
		t += c.ReadBytes[i] + c.WrittenBytes[i]
	}
	return t
}

// TotalReqs returns the total number of I/O requests (the model's S,
// plus shuffle reads).
func (c *Counters) TotalReqs() int64 {
	var t int64
	for i := 0; i < int(NumIOClasses); i++ {
		t += c.ReadReqs[i] + c.WriteReqs[i]
	}
	return t
}

// File is a named byte file on one device of one node.
type File struct {
	name string
	dev  cost.Device
	data []byte
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the current physical size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Data returns the raw contents without charging I/O. Use only for
// assertions and for memory-resident access paths that are explicitly
// free (e.g. shuffle served from the mapper's memory).
func (f *File) Data() []byte { return f.data }

// Store is one node's storage: two devices sharing nothing, each a
// capacity-1 sim resource (one outstanding request at a time, FIFO).
type Store struct {
	node     int
	model    cost.Model
	arms     [2]*sim.Resource
	counters Counters
	files    map[string]*File
	// Intermediate decides the device for intermediate data (spills,
	// map output). Input/output (HDFS) always use the HDD, as in the
	// paper's SSD experiment.
	Intermediate cost.Device
	liveBytes    int64

	// SlowFactor > 1 stretches every seek and transfer on this node's
	// devices by that multiple — the disk half of a straggler node
	// (FaultPlan.SlowNodes). 0 or 1 means nominal speed.
	SlowFactor float64
}

// NewStore creates a node-local store.
func NewStore(k *sim.Kernel, node int, model cost.Model) *Store {
	return &Store{
		node:  node,
		model: model,
		arms: [2]*sim.Resource{
			sim.NewResource(k, fmt.Sprintf("n%d.hdd", node), 1),
			sim.NewResource(k, fmt.Sprintf("n%d.ssd", node), 1),
		},
		files:        make(map[string]*File),
		Intermediate: cost.HDD,
	}
}

// Counters returns a pointer to the store's counters (live view).
func (s *Store) Counters() *Counters { return &s.counters }

// Arm returns the sim resource for the device (for metrics sampling).
func (s *Store) Arm(dev cost.Device) *sim.Resource { return s.arms[dev] }

// LiveBytes returns the physical bytes currently held in files.
func (s *Store) LiveBytes() int64 { return s.liveBytes }

// deviceFor maps an I/O class to a device under the placement policy.
func (s *Store) deviceFor(class IOClass) cost.Device {
	switch class {
	case MapInput, ReduceOutput, Checkpoint:
		return cost.HDD
	default:
		return s.Intermediate
	}
}

// Create makes an empty file for the given class's device. Names must
// be unique per store.
func (s *Store) Create(name string, class IOClass) *File {
	if _, dup := s.files[name]; dup {
		panic("storage: duplicate file " + name)
	}
	f := &File{name: name, dev: s.deviceFor(class)}
	s.files[name] = f
	return f
}

// Delete removes a file and frees its memory.
func (s *Store) Delete(f *File) {
	s.liveBytes -= int64(len(f.data))
	delete(s.files, f.name)
	f.data = nil
}

// Append writes data to the end of f as a single request, charging
// seek + transfer on the device arm.
func (s *Store) Append(p *sim.Proc, f *File, data []byte, class IOClass) {
	s.charge(p, f.dev, int64(len(data)))
	f.data = append(f.data, data...)
	s.liveBytes += int64(len(data))
	s.counters.WrittenBytes[class] += int64(len(data))
	s.counters.WriteReqs[class]++
}

// ReadAt reads n bytes at off from f as a single request.
func (s *Store) ReadAt(p *sim.Proc, f *File, off, n int64, class IOClass) []byte {
	if off+n > int64(len(f.data)) {
		panic(fmt.Sprintf("storage: read past EOF of %s (%d+%d > %d)", f.name, off, n, len(f.data)))
	}
	s.charge(p, f.dev, n)
	s.counters.ReadBytes[class] += n
	s.counters.ReadReqs[class]++
	return f.data[off : off+n : off+n]
}

// ReadAll reads the whole file in requests of at most segment physical
// bytes, modelling a bounded read buffer. segment ≤ 0 means one
// request.
func (s *Store) ReadAll(p *sim.Proc, f *File, segment int64, class IOClass) []byte {
	size := int64(len(f.data))
	if segment <= 0 || segment >= size {
		if size == 0 {
			return nil
		}
		return s.ReadAt(p, f, 0, size, class)
	}
	for off := int64(0); off < size; off += segment {
		n := segment
		if off+n > size {
			n = size - off
		}
		s.ReadAt(p, f, off, n, class)
	}
	return f.data
}

// ChargeInputRead accounts for reading job input that is generated on
// the fly rather than stored (the DFS synthesizes chunk bytes): it
// charges the HDD arm and the MapInput counters without touching any
// file.
func (s *Store) ChargeInputRead(p *sim.Proc, physBytes int64) {
	s.charge(p, cost.HDD, physBytes)
	s.counters.ReadBytes[MapInput] += physBytes
	s.counters.ReadReqs[MapInput]++
}

// ChargeOutputWrite accounts for job output written back to the DFS
// without retaining the bytes.
func (s *Store) ChargeOutputWrite(p *sim.Proc, physBytes int64) {
	s.charge(p, cost.HDD, physBytes)
	s.counters.WrittenBytes[ReduceOutput] += physBytes
	s.counters.WriteReqs[ReduceOutput]++
}

// ChargeCheckpointWrite accounts for writing physBytes of reducer
// checkpoint state. Like ChargeOutputWrite the bytes are not retained:
// the checkpoint is modelled as replicated off-node (it must survive
// the node), so the engine keeps the recoverable image itself and the
// store only charges the local write leg.
func (s *Store) ChargeCheckpointWrite(p *sim.Proc, physBytes int64) {
	if physBytes <= 0 {
		return
	}
	s.charge(p, cost.HDD, physBytes)
	s.counters.WrittenBytes[Checkpoint] += physBytes
	s.counters.WriteReqs[Checkpoint]++
}

// ChargeCheckpointRead accounts for a restarted reducer reading back
// physBytes of checkpoint state onto this node.
func (s *Store) ChargeCheckpointRead(p *sim.Proc, physBytes int64) {
	if physBytes <= 0 {
		return
	}
	s.charge(p, cost.HDD, physBytes)
	s.counters.ReadBytes[Checkpoint] += physBytes
	s.counters.ReadReqs[Checkpoint]++
}

// charge occupies the device arm for seek + transfer time.
func (s *Store) charge(p *sim.Proc, dev cost.Device, physBytes int64) {
	d := s.model.SeekTime(dev) + s.model.TransferTime(dev, physBytes)
	if s.SlowFactor > 1 {
		d = time.Duration(float64(d) * s.SlowFactor)
	}
	p.Use(s.arms[dev], 1, d)
}
