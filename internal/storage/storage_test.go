package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/sim"
)

// run executes fn inside a one-process simulation and returns the
// total virtual time.
func run(t *testing.T, model cost.Model, fn func(p *sim.Proc, s *Store)) time.Duration {
	t.Helper()
	k := sim.NewKernel()
	s := NewStore(k, 0, model)
	k.Spawn("t", func(p *sim.Proc) { fn(p, s) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k.NowDur()
}

func TestAppendReadRoundTrip(t *testing.T) {
	m := cost.Default(1)
	run(t, m, func(p *sim.Proc, s *Store) {
		f := s.Create("spill-1", ReduceSpill)
		s.Append(p, f, []byte("hello "), ReduceSpill)
		s.Append(p, f, []byte("world"), ReduceSpill)
		if f.Size() != 11 {
			t.Fatalf("size=%d", f.Size())
		}
		got := s.ReadAt(p, f, 0, 11, ReduceSpill)
		if !bytes.Equal(got, []byte("hello world")) {
			t.Fatalf("got %q", got)
		}
	})
}

func TestIOTimeCharged(t *testing.T) {
	m := cost.Default(1)
	d := run(t, m, func(p *sim.Proc, s *Store) {
		f := s.Create("f", MapSpill)
		s.Append(p, f, make([]byte, 80*1e6), MapSpill) // 80MB at 80MB/s = 1s + 4ms seek
	})
	want := time.Second + 4*time.Millisecond
	if d != want {
		t.Fatalf("charged %v want %v", d, want)
	}
}

func TestCountersPerClass(t *testing.T) {
	m := cost.Default(1)
	run(t, m, func(p *sim.Proc, s *Store) {
		f := s.Create("f", MapSpill)
		s.Append(p, f, make([]byte, 100), MapSpill)
		s.ReadAt(p, f, 0, 40, MapSpill)
		c := s.Counters()
		if c.WrittenBytes[MapSpill] != 100 || c.ReadBytes[MapSpill] != 40 {
			t.Fatalf("bytes: %+v", c)
		}
		if c.WriteReqs[MapSpill] != 1 || c.ReadReqs[MapSpill] != 1 {
			t.Fatalf("reqs: %+v", c)
		}
		if c.TotalBytes() != 140 || c.TotalReqs() != 2 {
			t.Fatalf("totals: %d/%d", c.TotalBytes(), c.TotalReqs())
		}
	})
}

func TestReadAllSegments(t *testing.T) {
	m := cost.Default(1)
	run(t, m, func(p *sim.Proc, s *Store) {
		f := s.Create("f", ReduceSpill)
		s.Append(p, f, make([]byte, 1000), ReduceSpill)
		s.ReadAll(p, f, 300, ReduceSpill)
		if got := s.Counters().ReadReqs[ReduceSpill]; got != 4 {
			t.Fatalf("segmented read made %d requests, want 4", got)
		}
	})
}

func TestIntermediateOnSSD(t *testing.T) {
	// The Fig 2(d) configuration: intermediates on SSD must be charged
	// on the SSD arm and be faster, while input stays on HDD.
	m := cost.Default(1)
	k := sim.NewKernel()
	s := NewStore(k, 0, m)
	s.Intermediate = cost.SSD
	k.Spawn("t", func(p *sim.Proc) {
		f := s.Create("spill", ReduceSpill)
		s.Append(p, f, make([]byte, 1e6), ReduceSpill)
		if s.Arm(cost.SSD).BusyIntegral() == 0 {
			t.Error("SSD arm unused")
		}
		if s.Arm(cost.HDD).BusyIntegral() != 0 {
			t.Error("HDD arm used for intermediate data")
		}
		s.ChargeInputRead(p, 1e6)
		if s.Arm(cost.HDD).BusyIntegral() == 0 {
			t.Error("input read must stay on HDD")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskContentionSerializes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two 80MB writers at full scale")
	}
	m := cost.Default(1)
	k := sim.NewKernel()
	s := NewStore(k, 0, m)
	var finish []time.Duration
	for i := 0; i < 2; i++ {
		name := "w" + string(rune('0'+i))
		k.Spawn(name, func(p *sim.Proc) {
			f := s.Create(name, MapSpill)
			s.Append(p, f, make([]byte, 80*1e6), MapSpill)
			finish = append(finish, k.NowDur())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[1]-finish[0] < time.Second {
		t.Fatalf("writes not serialized: %v", finish)
	}
}

func TestDeleteFreesMemory(t *testing.T) {
	m := cost.Default(1)
	run(t, m, func(p *sim.Proc, s *Store) {
		f := s.Create("f", MapOutput)
		s.Append(p, f, make([]byte, 500), MapOutput)
		if s.LiveBytes() != 500 {
			t.Fatalf("live=%d", s.LiveBytes())
		}
		s.Delete(f)
		if s.LiveBytes() != 0 {
			t.Fatalf("live after delete=%d", s.LiveBytes())
		}
	})
}

func TestDuplicateCreatePanics(t *testing.T) {
	m := cost.Default(1)
	k := sim.NewKernel()
	s := NewStore(k, 0, m)
	k.Spawn("t", func(p *sim.Proc) {
		s.Create("f", MapSpill)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate create")
			}
		}()
		s.Create("f", MapSpill)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadPastEOFPanics(t *testing.T) {
	m := cost.Default(1)
	k := sim.NewKernel()
	s := NewStore(k, 0, m)
	k.Spawn("t", func(p *sim.Proc) {
		f := s.Create("f", MapSpill)
		s.Append(p, f, []byte("abc"), MapSpill)
		defer func() {
			if recover() == nil {
				t.Error("expected panic reading past EOF")
			}
		}()
		s.ReadAt(p, f, 0, 4, MapSpill)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.ReadBytes[MapInput] = 10
	b.ReadBytes[MapInput] = 5
	b.WriteReqs[ReduceSpill] = 2
	a.Add(&b)
	if a.ReadBytes[MapInput] != 15 || a.WriteReqs[ReduceSpill] != 2 {
		t.Fatalf("%+v", a)
	}
}

func TestIOClassStrings(t *testing.T) {
	for c := IOClass(0); c < NumIOClasses; c++ {
		if c.String() == "io?" {
			t.Fatalf("class %d has no name", c)
		}
	}
}
