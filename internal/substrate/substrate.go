// Package substrate defines the execution-substrate interface the
// platform components (internal/core, internal/sortmerge,
// internal/merge, internal/storage) are written against: who supplies
// time, parallelism, and metered device occupancy for a running task.
//
// Two substrates implement it:
//
//   - the discrete-event simulation (internal/sim): Proc is a simulated
//     process whose clock is virtual, Timer is a FIFO-queued sim
//     resource, and a Use call parks the process for the charged
//     duration — the backend every experiment and golden report runs
//     on;
//   - the wall-clock backend (this package's WallProc/WallTimer, driven
//     by internal/realexec): Proc is a plain goroutine whose clock is
//     the host's, and a Use call merely accumulates the charged
//     duration as a busy integral — the virtual cost is carried as
//     accounting while the real work takes whatever time it takes.
//
// Platform code cannot tell the two apart, which is the point: the
// map/shuffle/merge/reduce paths run identically on both, and the
// simfuzz differential harness holds their answers bit-for-bit equal.
package substrate

import (
	"sync/atomic"
	"time"
)

// Proc is one running task's execution context: a clock, a way to
// spend time, and a handle on the compute pool for pure fan-out work.
// *sim.Proc implements it for the DES; WallProc for real execution.
type Proc interface {
	// Now returns the task clock in nanoseconds — virtual time on the
	// DES, wall time since run start on the real backend.
	Now() int64

	// Hold spends d of task time: the DES parks the process; the real
	// backend does nothing (real work already takes real time, and the
	// fault-free paths the real backend runs never sleep).
	Hold(d time.Duration)

	// Workers returns the compute-pool size available for sharding pure
	// compute. Components must combine sharded results in deterministic
	// order, so the value never changes outputs.
	Workers() int

	// ParallelFor runs fn(0) … fn(n-1), possibly concurrently; each
	// fn(i) must be pure and write only its own result slot.
	ParallelFor(n int, fn func(i int))
}

// Timer is a metered device a task occupies for a charged duration —
// a disk arm, a NIC. The DES implements it as a capacity-1 FIFO
// resource (Use parks the caller); the wall-clock backend as a plain
// busy-time accumulator. BusyIntegral is ∫ unitsInUse dt in
// unit-nanoseconds, the basis of the utilization metrics.
type Timer interface {
	Use(p Proc, tokens int64, d time.Duration)
	BusyIntegral() int64
}

// WallProc is the real-execution Proc: a goroutine with a wall clock.
// Pure compute runs inline (Workers() == 1) — task-level parallelism
// on the real backend comes from running many tasks on goroutines,
// not from sharding inside one task, which keeps every per-task
// result independent of the worker count.
type WallProc struct {
	start time.Time
}

// NewWallProc returns a wall-clock Proc whose Now() counts from start.
func NewWallProc(start time.Time) *WallProc { return &WallProc{start: start} }

// Now implements Proc: nanoseconds of wall time since run start.
func (p *WallProc) Now() int64 { return int64(time.Since(p.start)) }

// Hold implements Proc as a no-op: charged virtual durations are
// accounting, not sleep, on the real backend.
func (p *WallProc) Hold(time.Duration) {}

// Workers implements Proc: per-task compute is serial.
func (p *WallProc) Workers() int { return 1 }

// ParallelFor implements Proc by running the body inline, in order.
func (p *WallProc) ParallelFor(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// WallTimer is the real-execution Timer: it accumulates charged
// durations atomically (tasks on different goroutines share a node's
// devices) without delaying the caller. The integral carries the cost
// model's virtual charge, so device-pressure accounting survives the
// move off the DES even though nothing actually queues.
type WallTimer struct {
	busy atomic.Int64
}

// NewWallTimer returns a zeroed accumulator.
func NewWallTimer() *WallTimer { return &WallTimer{} }

// Use implements Timer: accumulate tokens·d without blocking.
func (t *WallTimer) Use(_ Proc, tokens int64, d time.Duration) {
	t.busy.Add(tokens * int64(d))
}

// BusyIntegral implements Timer.
func (t *WallTimer) BusyIntegral() int64 { return t.busy.Load() }
