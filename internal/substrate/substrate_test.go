package substrate_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/substrate"
)

// TestWallProcClock pins the wall Proc's clock contract: Now counts
// nanoseconds from the supplied start and never goes backward.
func TestWallProcClock(t *testing.T) {
	p := substrate.NewWallProc(time.Now())
	prev := p.Now()
	if prev < 0 {
		t.Fatalf("Now() = %d before start", prev)
	}
	for i := 0; i < 100; i++ {
		now := p.Now()
		if now < prev {
			t.Fatalf("clock went backward: %d after %d", now, prev)
		}
		prev = now
	}
}

// TestWallProcHoldIsNoOp pins that charged virtual durations are
// accounting, not sleep: holding an hour must return immediately.
func TestWallProcHoldIsNoOp(t *testing.T) {
	p := substrate.NewWallProc(time.Now())
	start := time.Now()
	p.Hold(time.Hour)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Hold(1h) slept %v; want immediate return", elapsed)
	}
}

// TestWallProcParallelFor pins serial per-task compute: Workers() is 1
// and ParallelFor visits every index inline, in order — the property
// that keeps per-task results independent of worker count.
func TestWallProcParallelFor(t *testing.T) {
	p := substrate.NewWallProc(time.Now())
	if got := p.Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
	var order []int
	p.ParallelFor(5, func(i int) { order = append(order, i) })
	if len(order) != 5 {
		t.Fatalf("ParallelFor visited %d indices, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ParallelFor order %v; want ascending 0..4", order)
		}
	}
	p.ParallelFor(0, func(i int) { t.Fatalf("ParallelFor(0) called fn(%d)", i) })
}

// TestWallTimerAccumulates pins the accumulator arithmetic: each Use
// adds tokens·d to the busy integral, and Use never blocks the caller.
func TestWallTimerAccumulates(t *testing.T) {
	tm := substrate.NewWallTimer()
	if got := tm.BusyIntegral(); got != 0 {
		t.Fatalf("fresh timer BusyIntegral = %d, want 0", got)
	}
	p := substrate.NewWallProc(time.Now())
	tm.Use(p, 1, 10*time.Millisecond)
	tm.Use(p, 3, 2*time.Millisecond)
	want := int64(10*time.Millisecond) + 3*int64(2*time.Millisecond)
	if got := tm.BusyIntegral(); got != want {
		t.Fatalf("BusyIntegral = %d, want %d", got, want)
	}
}

// TestWallTimerConcurrentUse pins atomicity: tasks on different
// goroutines share one node's devices, so concurrent charges must not
// lose updates. Run with -race.
func TestWallTimerConcurrentUse(t *testing.T) {
	tm := substrate.NewWallTimer()
	const goroutines, charges = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := substrate.NewWallProc(time.Now())
			for i := 0; i < charges; i++ {
				tm.Use(p, 2, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines) * charges * 2 * int64(time.Microsecond)
	if got := tm.BusyIntegral(); got != want {
		t.Fatalf("BusyIntegral = %d, want %d (lost updates)", got, want)
	}
}

// TestTimerParityAcrossSubstrates pins the conformance property the
// metrics rely on: the same sequence of charges yields the same busy
// integral whether the Timer is a wall accumulator or a DES resource —
// utilization numbers survive the move between backends.
func TestTimerParityAcrossSubstrates(t *testing.T) {
	charges := []struct {
		tokens int64
		d      time.Duration
	}{
		{1, 7 * time.Millisecond},
		{1, 250 * time.Microsecond},
		{1, 3 * time.Second},
	}

	wall := substrate.NewWallTimer()
	wp := substrate.NewWallProc(time.Now())
	for _, c := range charges {
		wall.Use(wp, c.tokens, c.d)
	}

	k := sim.NewKernel()
	res := sim.NewResource(k, "disk", 1)
	k.Spawn("charger", func(p *sim.Proc) {
		var st substrate.Timer = res // charge through the interface
		for _, c := range charges {
			st.Use(p, c.tokens, c.d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	if wall.BusyIntegral() != res.BusyIntegral() {
		t.Fatalf("busy integrals diverge: wall %d, sim %d",
			wall.BusyIntegral(), res.BusyIntegral())
	}
}
