package workload

import (
	"bytes"
	"fmt"
	"os"
)

// FileInput is a dfs.Input over a real newline-delimited log file,
// split into chunks of roughly chunkBytes at record boundaries — how
// HDFS block splits align to records. It lets the platform run over
// actual click logs (e.g. a downloaded WorldCup trace) instead of the
// synthetic generators; chunk boundaries are computed once so chunk
// reads are deterministic and O(1) to locate.
type FileInput struct {
	name   string
	data   []byte
	bounds []int // bounds[i]..bounds[i+1] is chunk i
}

// NewFileInput loads a record file and splits it into chunks of about
// chunkBytes (each ending on a record boundary).
func NewFileInput(path string, chunkBytes int64) (*FileInput, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("workload: chunk size must be positive")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return newFileInputFromBytes(path, data, chunkBytes), nil
}

// NewBytesInput wraps an in-memory record buffer as an input (testing
// and embedding convenience).
func NewBytesInput(name string, data []byte, chunkBytes int64) *FileInput {
	if chunkBytes <= 0 {
		panic("workload: chunk size must be positive")
	}
	return newFileInputFromBytes(name, append([]byte(nil), data...), chunkBytes)
}

func newFileInputFromBytes(name string, data []byte, chunkBytes int64) *FileInput {
	f := &FileInput{name: name, data: data, bounds: []int{0}}
	for off := 0; off < len(data); {
		end := off + int(chunkBytes)
		if end >= len(data) {
			end = len(data)
		} else if nl := bytes.IndexByte(data[end:], '\n'); nl >= 0 {
			end += nl + 1
		} else {
			end = len(data)
		}
		f.bounds = append(f.bounds, end)
		off = end
	}
	return f
}

// Name implements dfs.Input.
func (f *FileInput) Name() string { return f.name }

// NumChunks implements dfs.Input.
func (f *FileInput) NumChunks() int { return len(f.bounds) - 1 }

// ChunkBytes implements dfs.Input.
func (f *FileInput) ChunkBytes(i int) []byte {
	if i < 0 || i >= f.NumChunks() {
		panic(fmt.Sprintf("workload: chunk %d out of range", i))
	}
	return f.data[f.bounds[i]:f.bounds[i+1]]
}

// TotalBytes returns the file size.
func (f *FileInput) TotalBytes() int64 { return int64(len(f.data)) }
