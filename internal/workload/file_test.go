package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileInputSplitsAtRecordBoundaries(t *testing.T) {
	var data []byte
	for i := 0; i < 100; i++ {
		data = append(data, []byte(strings.Repeat("x", 20)+"\n")...)
	}
	in := NewBytesInput("t", data, 64)
	if in.NumChunks() < 10 {
		t.Fatalf("chunks=%d", in.NumChunks())
	}
	var rejoined []byte
	for i := 0; i < in.NumChunks(); i++ {
		chunk := in.ChunkBytes(i)
		if len(chunk) == 0 {
			t.Fatalf("empty chunk %d", i)
		}
		if chunk[len(chunk)-1] != '\n' {
			t.Fatalf("chunk %d does not end at a record boundary", i)
		}
		rejoined = append(rejoined, chunk...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("chunks do not reassemble the file")
	}
}

func TestFileInputFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clicks.log")
	content := []byte("a 1\nb 2\nc 3\n")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := NewFileInput(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if in.TotalBytes() != int64(len(content)) {
		t.Fatalf("size %d", in.TotalBytes())
	}
	if in.Name() != path {
		t.Fatalf("name %q", in.Name())
	}
}

func TestFileInputMissingFile(t *testing.T) {
	if _, err := NewFileInput("/nonexistent/file.log", 64); err == nil {
		t.Fatal("expected error")
	}
}

func TestFileInputNoTrailingNewline(t *testing.T) {
	in := NewBytesInput("t", []byte("aaa\nbbb\nccc"), 4)
	var rejoined []byte
	for i := 0; i < in.NumChunks(); i++ {
		rejoined = append(rejoined, in.ChunkBytes(i)...)
	}
	if string(rejoined) != "aaa\nbbb\nccc" {
		t.Fatalf("rejoined %q", rejoined)
	}
}

func TestFileInputBounds(t *testing.T) {
	in := NewBytesInput("t", []byte("a\n"), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in.ChunkBytes(1)
}
