// Package workload synthesizes the paper's two evaluation datasets at
// configurable scale:
//
//   - a click stream standing in for the WorldCup'98 log (§2.3, §6):
//     Zipf-distributed user ids and URLs, monotonically increasing
//     timestamps with bounded jitter — the properties sessionization,
//     click counting, frequent-user identification and page-frequency
//     counting depend on;
//   - a document corpus standing in for GOV2 (§6): lines of
//     Zipf-distributed words for trigram counting, with a much flatter
//     key distribution than user ids (the property behind the paper's
//     Fig 7(f) observation that DINC ≈ INC for trigrams).
//
// Generators implement dfs.Input: chunk i is synthesized on demand
// from (seed, i), so a run never materializes the whole dataset and
// two runs always see identical bytes.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// ClickSpec configures a synthetic click stream.
type ClickSpec struct {
	PhysBytes int64 // total physical bytes to generate
	ChunkPhys int64 // physical chunk size (the scaled C)
	Seed      int64

	Users    int     // distinct user pool size
	UserSkew float64 // Zipf s for users (>1; higher = more skew)
	UserV    float64 // Zipf v offset: higher softens the head (0 = 256)
	URLs     int     // distinct URL pool size
	URLSkew  float64 // Zipf s for URLs
	URLV     float64 // Zipf v offset for URLs (0 = 16)

	// Duration is the logical time span of the stream; timestamps
	// advance uniformly across it. It controls how many 5-minute
	// session gaps occur.
	Duration time.Duration
	// Jitter bounds timestamp disorder (arrival time vs event time).
	Jitter time.Duration

	// Pad is the agent-padding length in bytes (record-shape knob: it
	// sets the fixed record size without touching any parsed field).
	// 0 keeps the default 32-byte padding, preserving the historical
	// byte-exact record layout.
	Pad int
}

// DefaultClickSpec returns a spec with WorldCup-like shape for the
// given physical size and chunk size.
func DefaultClickSpec(physBytes, chunkPhys int64, seed int64) ClickSpec {
	return ClickSpec{
		PhysBytes: physBytes,
		ChunkPhys: chunkPhys,
		Seed:      seed,
		Users:     200_000,
		UserSkew:  1.2,
		UserV:     256,
		URLs:      20_000,
		URLSkew:   1.3,
		URLV:      16,
		Duration:  24 * time.Hour,
		Jitter:    2 * time.Second,
	}
}

// ClickStream is a dfs.Input of click records. A record is a single
// ~100-byte line:
//
//	ts<TAB>user<TAB>url<TAB>status<TAB>bytes<TAB>agent-padding
//
// with ts in fixed-width epoch milliseconds so string order is time
// order.
type ClickStream struct {
	spec      ClickSpec
	pad       []byte
	recBytes  int
	recsChunk int
	totalRecs int64
	chunks    int
}

const clickPad = "Mozilla/4.0-compatible-padpadpad"

// padding returns the agent-padding bytes for a pad length: the
// default string, truncated or extended by repetition. Every parsed
// field keeps its offset; only the record tail (and hence the physical
// record size) changes.
func padding(n int) []byte {
	if n <= 0 {
		n = len(clickPad)
	}
	p := make([]byte, 0, n)
	for len(p) < n {
		p = append(p, clickPad[:min(n-len(p), len(clickPad))]...)
	}
	return p
}

// NewClickStream builds the generator for a spec.
func NewClickStream(spec ClickSpec) *ClickStream {
	if spec.PhysBytes <= 0 || spec.ChunkPhys <= 0 {
		panic("workload: need positive sizes")
	}
	if spec.Users < 1 || spec.URLs < 1 {
		panic("workload: need positive pools")
	}
	c := &ClickStream{spec: spec, pad: padding(spec.Pad)}
	c.recBytes = len(c.appendRecord(nil, 0, 0, 0, 200, 1234))
	c.recsChunk = int(spec.ChunkPhys) / c.recBytes
	if c.recsChunk < 1 {
		c.recsChunk = 1
	}
	c.totalRecs = spec.PhysBytes / int64(c.recBytes)
	if c.totalRecs < 1 {
		c.totalRecs = 1
	}
	c.chunks = int((c.totalRecs + int64(c.recsChunk) - 1) / int64(c.recsChunk))
	return c
}

// Name implements dfs.Input.
func (c *ClickStream) Name() string { return "clickstream" }

// NumChunks implements dfs.Input.
func (c *ClickStream) NumChunks() int { return c.chunks }

// RecordBytes returns the fixed physical record size.
func (c *ClickStream) RecordBytes() int { return c.recBytes }

// TotalRecords returns the number of records in the stream.
func (c *ClickStream) TotalRecords() int64 { return c.totalRecs }

// Users returns the user pool size.
func (c *ClickStream) Users() int { return c.spec.Users }

// appendPadInt appends v (non-negative) in decimal, zero-padded to at
// least width digits — the append-path equivalent of Sprintf "%0*d",
// which dominated chunk-generation CPU profiles.
func appendPadInt(dst []byte, v int64, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	if v == 0 {
		i--
		tmp[i] = '0'
	}
	for x := v; x > 0; x /= 10 {
		i--
		tmp[i] = byte('0' + x%10)
	}
	for len(tmp)-i < width {
		i--
		tmp[i] = '0'
	}
	return append(dst, tmp[i:]...)
}

// appendRecord appends one click record, bytewise identical to
// Sprintf("%013d\tu%07d\t/p%06d.html\t%03d\t%04d\t%s\n", ...).
func (c *ClickStream) appendRecord(dst []byte, tsMillis int64, user, url, status, size int) []byte {
	dst = appendPadInt(dst, tsMillis, 13)
	dst = append(dst, '\t', 'u')
	dst = appendPadInt(dst, int64(user), 7)
	dst = append(dst, "\t/p"...)
	dst = appendPadInt(dst, int64(url), 6)
	dst = append(dst, ".html\t"...)
	dst = appendPadInt(dst, int64(status), 3)
	dst = append(dst, '\t')
	dst = appendPadInt(dst, int64(size), 4)
	dst = append(dst, '\t')
	dst = append(dst, c.pad...)
	return append(dst, '\n')
}

// ChunkBytes implements dfs.Input.
func (c *ClickStream) ChunkBytes(i int) []byte {
	if i < 0 || i >= c.chunks {
		panic(fmt.Sprintf("workload: chunk %d out of range", i))
	}
	rng := rand.New(rand.NewSource(c.spec.Seed ^ int64(i+1)*0x5851f42d4c957f2d))
	uv, pv := c.spec.UserV, c.spec.URLV
	if uv <= 0 {
		uv = 256
	}
	if pv <= 0 {
		pv = 16
	}
	uz := rand.NewZipf(rng, c.spec.UserSkew, uv, uint64(c.spec.Users-1))
	pz := rand.NewZipf(rng, c.spec.URLSkew, pv, uint64(c.spec.URLs-1))
	first := int64(i) * int64(c.recsChunk)
	n := int64(c.recsChunk)
	if first+n > c.totalRecs {
		n = c.totalRecs - first
	}
	out := make([]byte, 0, int(n)*c.recBytes)
	perRec := float64(c.spec.Duration.Milliseconds()) / float64(c.totalRecs)
	for g := first; g < first+n; g++ {
		ts := int64(float64(g) * perRec)
		if c.spec.Jitter > 0 {
			ts += rng.Int63n(c.spec.Jitter.Milliseconds()*2+1) - c.spec.Jitter.Milliseconds()
			if ts < 0 {
				ts = 0
			}
		}
		user := int(uz.Uint64())
		url := int(pz.Uint64())
		status := 200
		if rng.Intn(50) == 0 {
			status = 404
		}
		out = c.appendRecord(out, ts, user, url, status, 100+rng.Intn(9900))
	}
	return out
}

// DocSpec configures a synthetic document corpus.
type DocSpec struct {
	PhysBytes int64
	ChunkPhys int64
	Seed      int64

	Vocab    int     // vocabulary size
	WordSkew float64 // Zipf s for words (close to 1 = flat)
	WordV    float64 // Zipf v offset: higher softens the head (0 = 64)
	DocWords int     // words per document line
}

// DefaultDocSpec returns a GOV2-like corpus spec.
func DefaultDocSpec(physBytes, chunkPhys int64, seed int64) DocSpec {
	return DocSpec{
		PhysBytes: physBytes,
		ChunkPhys: chunkPhys,
		Seed:      seed,
		Vocab:     50_000,
		WordSkew:  1.05,
		DocWords:  12,
	}
}

// DocCorpus is a dfs.Input of document lines ("w000123 w004567 …").
type DocCorpus struct {
	spec      DocSpec
	recBytes  int
	recsChunk int
	totalRecs int64
	chunks    int
}

// NewDocCorpus builds the generator for a spec.
func NewDocCorpus(spec DocSpec) *DocCorpus {
	if spec.PhysBytes <= 0 || spec.ChunkPhys <= 0 {
		panic("workload: need positive sizes")
	}
	if spec.Vocab < 3 || spec.DocWords < 3 {
		panic("workload: need ≥3 vocabulary words and words per doc")
	}
	d := &DocCorpus{spec: spec}
	d.recBytes = spec.DocWords*8 + 1 // "w%06d " per word + newline
	d.recsChunk = int(spec.ChunkPhys) / d.recBytes
	if d.recsChunk < 1 {
		d.recsChunk = 1
	}
	d.totalRecs = spec.PhysBytes / int64(d.recBytes)
	if d.totalRecs < 1 {
		d.totalRecs = 1
	}
	d.chunks = int((d.totalRecs + int64(d.recsChunk) - 1) / int64(d.recsChunk))
	return d
}

// Name implements dfs.Input.
func (d *DocCorpus) Name() string { return "doccorpus" }

// NumChunks implements dfs.Input.
func (d *DocCorpus) NumChunks() int { return d.chunks }

// RecordBytes returns the fixed physical record size.
func (d *DocCorpus) RecordBytes() int { return d.recBytes }

// TotalRecords returns the number of document lines.
func (d *DocCorpus) TotalRecords() int64 { return d.totalRecs }

// ChunkBytes implements dfs.Input.
func (d *DocCorpus) ChunkBytes(i int) []byte {
	if i < 0 || i >= d.chunks {
		panic(fmt.Sprintf("workload: chunk %d out of range", i))
	}
	rng := rand.New(rand.NewSource(d.spec.Seed ^ int64(i+1)*0x2545f4914f6cdd1d))
	wv := d.spec.WordV
	if wv <= 0 {
		wv = 64
	}
	wz := rand.NewZipf(rng, d.spec.WordSkew, wv, uint64(d.spec.Vocab-1))
	first := int64(i) * int64(d.recsChunk)
	n := int64(d.recsChunk)
	if first+n > d.totalRecs {
		n = d.totalRecs - first
	}
	out := make([]byte, 0, int(n)*d.recBytes)
	for g := int64(0); g < n; g++ {
		for w := 0; w < d.spec.DocWords; w++ {
			sep := byte(' ')
			if w == d.spec.DocWords-1 {
				sep = '\n'
			}
			out = append(out, 'w')
			out = appendPadInt(out, int64(wz.Uint64()), 6)
			out = append(out, sep)
		}
	}
	return out
}
