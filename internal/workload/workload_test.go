package workload

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testClickSpec() ClickSpec {
	s := DefaultClickSpec(1<<20, 64<<10, 42)
	s.Users = 5000
	s.URLs = 1000
	return s
}

func TestClickStreamDeterministic(t *testing.T) {
	a := NewClickStream(testClickSpec())
	b := NewClickStream(testClickSpec())
	for i := 0; i < a.NumChunks(); i += 3 {
		if !bytes.Equal(a.ChunkBytes(i), b.ChunkBytes(i)) {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

func TestClickStreamSizes(t *testing.T) {
	c := NewClickStream(testClickSpec())
	if c.NumChunks() < 10 {
		t.Fatalf("chunks=%d", c.NumChunks())
	}
	var total int64
	for i := 0; i < c.NumChunks(); i++ {
		total += int64(len(c.ChunkBytes(i)))
	}
	// Total within one record of the target.
	if total > 1<<20 || total < (1<<20)-int64(c.RecordBytes())*2 {
		t.Fatalf("total=%d target=%d", total, 1<<20)
	}
	if got := total / int64(c.RecordBytes()); got != c.TotalRecords() {
		t.Fatalf("records %d vs %d", got, c.TotalRecords())
	}
}

func TestClickRecordFormat(t *testing.T) {
	c := NewClickStream(testClickSpec())
	data := c.ChunkBytes(0)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	for _, ln := range lines[:10] {
		fields := strings.Split(string(ln), "\t")
		if len(fields) != 6 {
			t.Fatalf("record %q has %d fields", ln, len(fields))
		}
		if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
			t.Fatalf("bad ts %q", fields[0])
		}
		if !strings.HasPrefix(fields[1], "u") {
			t.Fatalf("bad user %q", fields[1])
		}
		if !strings.HasPrefix(fields[2], "/p") {
			t.Fatalf("bad url %q", fields[2])
		}
		if len(ln)+1 != c.RecordBytes() {
			t.Fatalf("record length %d, want %d", len(ln)+1, c.RecordBytes())
		}
	}
}

func TestClickTimestampsRoughlyOrdered(t *testing.T) {
	// Sessionization needs bounded disorder: within a chunk, the
	// timestamp of record g is g·ΔT ± jitter, so any inversion is
	// bounded by 2·jitter.
	spec := testClickSpec()
	spec.Jitter = time.Second
	c := NewClickStream(spec)
	data := c.ChunkBytes(3)
	var prev int64 = -1 << 62
	maxInversion := int64(0)
	for _, ln := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
		ts, _ := strconv.ParseInt(string(ln[:13]), 10, 64)
		if prev-ts > maxInversion {
			maxInversion = prev - ts
		}
		if ts > prev {
			prev = ts
		}
	}
	if maxInversion > 2*spec.Jitter.Milliseconds() {
		t.Fatalf("inversion %dms exceeds 2×jitter", maxInversion)
	}
}

func TestClickUserSkew(t *testing.T) {
	// Zipf users: the single hottest user must account for far more
	// clicks than the uniform share — the property DINC-hash exploits.
	c := NewClickStream(testClickSpec())
	counts := map[string]int{}
	n := 0
	for i := 0; i < c.NumChunks(); i++ {
		for _, ln := range bytes.Split(bytes.TrimSuffix(c.ChunkBytes(i), []byte("\n")), []byte("\n")) {
			counts[string(ln[14:22])]++
			n++
		}
	}
	max := 0
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	uniform := n / 5000
	if max < 5*uniform {
		t.Fatalf("hottest user %d clicks vs uniform share %d: not skewed", max, uniform)
	}
}

func TestClickStreamChunkBounds(t *testing.T) {
	c := NewClickStream(testClickSpec())
	for _, bad := range []int{-1, c.NumChunks()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("chunk %d should panic", bad)
				}
			}()
			c.ChunkBytes(bad)
		}()
	}
}

func TestDocCorpusDeterministic(t *testing.T) {
	spec := DefaultDocSpec(1<<20, 64<<10, 7)
	a, b := NewDocCorpus(spec), NewDocCorpus(spec)
	if !bytes.Equal(a.ChunkBytes(0), b.ChunkBytes(0)) {
		t.Fatal("doc corpus not deterministic")
	}
}

func TestDocRecordShape(t *testing.T) {
	spec := DefaultDocSpec(1<<20, 64<<10, 7)
	spec.Vocab = 500
	d := NewDocCorpus(spec)
	data := d.ChunkBytes(0)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	for _, ln := range lines[:20] {
		words := strings.Fields(string(ln))
		if len(words) != spec.DocWords {
			t.Fatalf("doc %q has %d words", ln, len(words))
		}
		for _, w := range words {
			if !strings.HasPrefix(w, "w") || len(w) != 7 {
				t.Fatalf("bad word %q", w)
			}
		}
	}
}

func TestDocWordDistributionFlatterThanUsers(t *testing.T) {
	// Paper §6.2: "the trigrams are distributed more evenly than the
	// user ids". Compare top-key share of words vs users.
	cs := testClickSpec()
	click := NewClickStream(cs)
	userCounts := map[string]int{}
	un := 0
	for i := 0; i < 5; i++ {
		for _, ln := range bytes.Split(bytes.TrimSuffix(click.ChunkBytes(i), []byte("\n")), []byte("\n")) {
			userCounts[string(ln[14:22])]++
			un++
		}
	}
	ds := DefaultDocSpec(1<<20, 64<<10, 7)
	ds.Vocab = 5000
	doc := NewDocCorpus(ds)
	triCounts := map[string]int{}
	tn := 0
	for i := 0; i < 5; i++ {
		words := strings.Fields(string(doc.ChunkBytes(i)))
		for j := 0; j+2 < len(words); j++ {
			triCounts[words[j]+"_"+words[j+1]+"_"+words[j+2]]++
			tn++
		}
	}
	share := func(c map[string]int, n int) float64 {
		max := 0
		for _, v := range c {
			if v > max {
				max = v
			}
		}
		return float64(max) / float64(n)
	}
	if share(triCounts, tn) >= share(userCounts, un) {
		t.Fatalf("trigram dist (%.5f) not flatter than user dist (%.5f)",
			share(triCounts, tn), share(userCounts, un))
	}
}

func TestSpecValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bytes":  func() { NewClickStream(ClickSpec{ChunkPhys: 1, Users: 1, URLs: 1}) },
		"zero users":  func() { NewClickStream(ClickSpec{PhysBytes: 1, ChunkPhys: 1, URLs: 1}) },
		"small vocab": func() { NewDocCorpus(DocSpec{PhysBytes: 1, ChunkPhys: 1, Vocab: 2, DocWords: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkClickChunkGen(b *testing.B) {
	c := NewClickStream(DefaultClickSpec(64<<20, 256<<10, 1))
	b.SetBytes(256 << 10)
	for i := 0; i < b.N; i++ {
		c.ChunkBytes(i % c.NumChunks())
	}
}

func BenchmarkDocChunkGen(b *testing.B) {
	d := NewDocCorpus(DefaultDocSpec(64<<20, 256<<10, 1))
	b.SetBytes(256 << 10)
	for i := 0; i < b.N; i++ {
		d.ChunkBytes(i % d.NumChunks())
	}
}

func ExampleClickStream() {
	spec := DefaultClickSpec(10_000, 5_000, 1)
	c := NewClickStream(spec)
	fmt.Println("chunks:", c.NumChunks(), "record bytes:", c.RecordBytes())
	// Output: chunks: 2 record bytes: 79
}
