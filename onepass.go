// Package onepass is a platform for scalable one-pass analytics using
// MapReduce — a Go reproduction of Li, Mazur, Diao, McGregor and
// Shenoy (SIGMOD 2011).
//
// The package runs MapReduce queries over a deterministic simulated
// cluster with five interchangeable data paths: Hadoop's sort-merge
// baseline, MapReduce Online-style pipelining (HOP), and the paper's
// three hash techniques — MR-hash (hybrid hash group-by), INC-hash
// (incremental key-state processing) and DINC-hash (frequent-key
// monitoring with in-memory processing of hot keys). Real records flow
// through real implementations of every component; only time is
// virtual, charged by a calibrated cost model so that a laptop
// reproduces the schedules, spill volumes, and progress curves of the
// paper's 10-node × hundreds-of-GB experiments.
//
// Quick start:
//
//	m := onepass.DefaultModel(1.0 / 256)             // 1GB stands for 256GB
//	input := onepass.SyntheticClickStream(onepass.ClickStreamSpec{
//	    PhysBytes: m.ScaleBytes(236e9),              // the paper's 236GB
//	    ChunkPhys: m.ScaleBytes(64e6),               // 64MB HDFS chunks
//	    Seed:      42,
//	    Users:     100_000, UserSkew: 1.2,
//	    URLs:      20_000, URLSkew: 1.3,
//	    Duration:  24 * time.Hour, Jitter: 2 * time.Second,
//	})
//	rep, err := onepass.Run(onepass.Job{
//	    Query:    onepass.Sessionization(5*time.Minute, 512, 5*time.Second),
//	    Input:    input,
//	    Platform: onepass.DINCHash,
//	    Cluster:  onepass.PaperCluster(m),
//	})
//
// The report carries running time, per-phase CPU, the paper's five
// I/O classes (input, map spill, shuffle, reduce spill, output), the
// Definition 1 map/reduce progress curves, task timelines, and CPU
// utilization / iowait series.
//
// The simulation is deterministic but not single-threaded: the
// Cluster's Parallelism knob (0 = GOMAXPROCS) sizes a fork/join
// compute pool that runs pure per-task computation — chunk synthesis,
// parsing, map functions, sorting, collector flushes — on real
// goroutines while the discrete-event kernel schedules one simulated
// process at a time. Reports are bit-for-bit identical for every pool
// size (including 1); only wall-clock time changes.
//
// A second execution substrate runs the same five data paths on real
// goroutines under wall-clock time with an M3R-style in-memory shuffle
// (RunReal); its answers and counters — including recovery from
// injected crashes, stragglers, task failures, and transient shuffle
// errors — are conformance-tested against the simulation.
package onepass

import (
	"time"

	"repro/internal/cost"
	"repro/internal/dfs"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/mr"
	"repro/internal/queries"
	"repro/internal/realexec"
	"repro/internal/workload"
)

// Programming model (see internal/mr for full documentation).
type (
	// Query is a MapReduce program: Map plus Reduce.
	Query = mr.Query
	// Combiner marks queries admitting partial aggregation.
	Combiner = mr.Combiner
	// Incremental marks queries supporting init/cb/fn state processing.
	Incremental = mr.Incremental
	// EarlyEmitter marks incremental queries with early answers.
	EarlyEmitter = mr.EarlyEmitter
	// OutputWriter receives job output records.
	OutputWriter = mr.OutputWriter
	// Hints carries workload estimates used to size hash buckets.
	Hints = mr.Hints
	// Input is a chunked input dataset (deterministic per chunk).
	Input = dfs.Input
)

// Execution (see internal/engine).
type (
	// Platform selects the data path.
	Platform = engine.Platform
	// Cluster describes the simulated cluster and Hadoop parameters.
	Cluster = engine.ClusterConfig
	// Job is a complete job submission.
	Job = engine.JobSpec
	// FaultPlan injects node crashes, stragglers, and task failures
	// into a run (Job.Faults); answers are unchanged, recovery costs
	// are reported.
	FaultPlan = engine.FaultPlan
	// DiskFaultPlan injects data-plane faults (FaultPlan.Disk):
	// transient I/O errors, write-time bit flips, and torn checkpoint
	// tails. Corruption injection requires Cluster.Checksums; all
	// detections and repairs are reported.
	DiskFaultPlan = engine.DiskFaultPlan
	// Report is the result of a run.
	Report = engine.Report
	// ProgressPoint is one point of the Definition 1 progress curve.
	ProgressPoint = metrics.ProgressPoint
	// Sample is one raw metrics sample (timeline, CPU, iowait).
	Sample = metrics.Sample
	// CostModel converts work into virtual time at a chosen scale.
	CostModel = cost.Model
)

// NodeCombineMode selects the in-node combine stage (Job.NodeCombine):
// every local map task's output on a node folds into one per-node hash
// table, and a single merged partitioned run per node enters the
// shuffle. Hierarchical (rack-style) aggregation on top of it is
// Job.AggFanIn. Answers are bit-identical to the per-task path on both
// backends; the shuffle bytes removed are reported in
// Report.ShuffleBytesSaved and the per-node breakdown in
// Report.ShuffleBytesByNode.
type NodeCombineMode = engine.NodeCombineMode

// Node-combine modes. Auto consults the analytical model: combining
// turns on when the predicted saving from the Km/Kr hints clears
// ModelNodeCombineThreshold.
const (
	NodeCombineOff  = engine.NodeCombineOff
	NodeCombineOn   = engine.NodeCombineOn
	NodeCombineAuto = engine.NodeCombineAuto
)

// ParseNodeCombineMode parses the -node-combine flag spelling
// (off|on|auto).
func ParseNodeCombineMode(s string) (NodeCombineMode, error) {
	return engine.ParseNodeCombineMode(s)
}

// ModelNodeCombineThreshold is the predicted shuffle-saving fraction
// above which NodeCombineAuto enables the stage.
const ModelNodeCombineThreshold = model.NodeCombineThreshold

// ModelNodeCombineSavedFrac predicts the fraction of shuffle bytes
// in-node combining removes for a workload on n nodes — the quantity
// NodeCombineAuto compares against ModelNodeCombineThreshold.
func ModelNodeCombineSavedFrac(w ModelWorkload, n int) float64 {
	return model.NodeCombineSavedFrac(w, n)
}

// Platforms.
const (
	// SortMerge is Hadoop's sort-merge implementation (§2.2); stock
	// versus optimized Hadoop is a parameter choice on the Cluster.
	SortMerge = engine.SortMerge
	// HOP is MapReduce Online-style pipelining (§2.2, §3.3).
	HOP = engine.HOP
	// MRHash is the basic hash technique (§4.1).
	MRHash = engine.MRHash
	// INCHash is the incremental hash technique (§4.2).
	INCHash = engine.INCHash
	// DINCHash is the dynamic incremental hash technique (§4.3).
	DINCHash = engine.DINCHash
)

// Workload generators (see internal/workload).
type (
	// ClickStreamSpec configures the synthetic WorldCup-like click
	// stream.
	ClickStreamSpec = workload.ClickSpec
	// DocCorpusSpec configures the synthetic GOV2-like corpus.
	DocCorpusSpec = workload.DocSpec
)

// Analytical model of Hadoop (§3; see internal/model).
type (
	// ModelWorkload is (D, Km, Kr).
	ModelWorkload = model.Workload
	// ModelHardware is (N, Bm, Br).
	ModelHardware = model.Hardware
	// ModelParams are the tunables (R, C, F).
	ModelParams = model.Params
)

// Run executes a job to completion on the simulated cluster.
func Run(job Job) (*Report, error) { return engine.Run(job) }

// RunReal executes a job on the wall-clock backend: real goroutines,
// real time, and an M3R-style in-memory shuffle, with the same data
// paths and the same virtual-time CPU/I/O accounting as the
// simulation. newQuery must build a fresh Query instance on every call
// (queries carry per-task scratch state); workers sizes the goroutine
// pool (0 or 1 = serial). The answer and every counter in the Report
// are identical for any worker count and match the DES run; only
// RunningTime, MapFinishTime, WallTime, Spans, and the two
// timing-dependent recovery counters (FetchRetries, SpeculativeWins)
// are measured. Fault plans and checkpointing run here too — kills are
// anchored on map progress (FaultPlan.KillAtMapProgress) instead of
// virtual time, and transient shuffle errors (ShuffleErrorRate)
// replace the DES's disk I/O errors; plans using the DES-only
// primitives (KillNodes, Disk) are rejected with a precise reason
// (Job.RealUnsupported). Job.Query is ignored.
func RunReal(job Job, newQuery func() Query, workers int) (*Report, error) {
	return realexec.Run(realexec.Spec{Job: job, NewQuery: newQuery, Workers: workers})
}

// DefaultModel returns the calibrated cost model at the given scale
// (physical bytes per logical byte; 1.0/256 means 1GB stands in for
// 256GB).
func DefaultModel(scale float64) CostModel { return cost.Default(scale) }

// PaperCluster returns the paper's evaluation cluster (§2.3) under the
// given cost model: 10 nodes × 4 cores, 4 map + 4 reduce slots, R=4,
// 140MB map buffers, 500MB reduce buffers.
func PaperCluster(m CostModel) Cluster { return engine.PaperCluster(m) }

// SyntheticClickStream builds the WorldCup-like click stream input.
func SyntheticClickStream(spec ClickStreamSpec) *workload.ClickStream {
	return workload.NewClickStream(spec)
}

// SyntheticDocCorpus builds the GOV2-like document corpus input.
func SyntheticDocCorpus(spec DocCorpusSpec) *workload.DocCorpus {
	return workload.NewDocCorpus(spec)
}

// Sessionization returns the click-session splitting query (§2.3):
// gap of inactivity that closes a session, fixed per-user state buffer
// size in bytes, and the tolerated timestamp disorder.
func Sessionization(gap time.Duration, stateBytes int, disorder time.Duration) Query {
	return queries.NewSessionization(gap, stateBytes, disorder)
}

// ClickCount returns the clicks-per-user query.
func ClickCount() Query { return queries.NewClickCount() }

// FrequentUsers returns the frequent-user identification query: users
// with at least threshold clicks, emitted as soon as known (§6).
func FrequentUsers(threshold int64) Query { return queries.NewFrequentUsers(threshold) }

// PageFrequency returns the visits-per-URL query.
func PageFrequency() Query { return queries.NewPageFrequency() }

// TrigramCount returns the word-trigram counting query: trigrams
// appearing at least threshold times (§6).
func TrigramCount(threshold int64) Query { return queries.NewTrigramCount(threshold) }

// ModelTimeCost evaluates the analytical model's time measurement T
// (Eq. 4) with the paper's §3.2 constants.
func ModelTimeCost(w ModelWorkload, h ModelHardware, p ModelParams) float64 {
	return model.TimeCost(w, h, p, model.PaperConstants())
}

// ModelOptimize picks the (C, F) minimizing T over candidate sets.
func ModelOptimize(w ModelWorkload, h ModelHardware, r int, cs []float64, fs []int) ModelParams {
	return model.Optimize(w, h, r, cs, fs, model.PaperConstants())
}

// WindowCount returns the tumbling-window URL-visit counting query —
// the stream-processing extension of the platform (§8): each window's
// counts are emitted as soon as the watermark passes the window end,
// with late data reported as supplementary records.
func WindowCount(window, disorder time.Duration) Query {
	return queries.NewWindowCount(window, disorder)
}

// FileInput loads a real newline-delimited log file as job input,
// split into ~chunkBytes chunks at record boundaries — for running the
// platform over actual traces instead of the synthetic generators.
func FileInput(path string, chunkBytes int64) (Input, error) {
	return workload.NewFileInput(path, chunkBytes)
}

// BytesInput wraps an in-memory record buffer as job input.
func BytesInput(name string, data []byte, chunkBytes int64) Input {
	return workload.NewBytesInput(name, data, chunkBytes)
}
