package onepass_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

// smallJob builds a tiny but complete job against the public API.
func smallJob(platform onepass.Platform) onepass.Job {
	m := onepass.DefaultModel(1.0 / 8192)
	return onepass.Job{
		Query: onepass.ClickCount(),
		Input: onepass.SyntheticClickStream(onepass.ClickStreamSpec{
			PhysBytes: m.ScaleBytes(4e9),
			ChunkPhys: m.ScaleBytes(64e6),
			Seed:      9,
			Users:     2000,
			UserSkew:  1.2,
			URLs:      500,
			URLSkew:   1.3,
			Duration:  2 * time.Hour,
			Jitter:    time.Second,
		}),
		Platform: platform,
		Cluster:  onepass.PaperCluster(m),
		Hints:    onepass.Hints{Km: 0.1, DistinctKeys: 2000},
	}
}

func TestPublicAPIRunsEveryPlatform(t *testing.T) {
	var first int64
	for _, pl := range []onepass.Platform{
		onepass.SortMerge, onepass.HOP, onepass.MRHash, onepass.INCHash, onepass.DINCHash,
	} {
		rep, err := onepass.Run(smallJob(pl))
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		if rep.OutputRecords == 0 {
			t.Fatalf("%v: no output", pl)
		}
		if first == 0 {
			first = rep.OutputRecords
		} else if rep.OutputRecords != first {
			t.Fatalf("%v: %d answers, want %d", pl, rep.OutputRecords, first)
		}
	}
}

func TestPublicAPIModelHelpers(t *testing.T) {
	w := onepass.ModelWorkload{D: 97e9, Km: 1, Kr: 1}
	h := onepass.ModelHardware{N: 10, Bm: 140e6, Br: 260e6}
	best := onepass.ModelOptimize(w, h, 4, []float64{32e6, 64e6, 128e6}, []int{4, 16})
	if best.F != 16 {
		t.Fatalf("optimizer picked F=%d, want one-pass 16", best.F)
	}
	if onepass.ModelTimeCost(w, h, best) <= 0 {
		t.Fatal("non-positive model cost")
	}
}

func TestPublicAPIQueriesConstructible(t *testing.T) {
	for _, q := range []onepass.Query{
		onepass.Sessionization(5*time.Minute, 512, time.Second),
		onepass.ClickCount(),
		onepass.FrequentUsers(50),
		onepass.PageFrequency(),
		onepass.TrigramCount(1000),
		onepass.WindowCount(time.Hour, time.Second),
	} {
		if q.Name() == "" {
			t.Fatal("query without a name")
		}
	}
}

func TestPublicAPIProgressShape(t *testing.T) {
	rep, err := onepass.Run(smallJob(onepass.INCHash))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Progress) == 0 {
		t.Fatal("no progress curve")
	}
	last := rep.Progress[len(rep.Progress)-1]
	if last.Map != 1 || last.Reduce != 1 {
		t.Fatalf("job did not end complete: %+v", last)
	}
}

func TestFileInputEndToEnd(t *testing.T) {
	// Run a job over a real on-disk log through the public API: the
	// adoption path for users with actual traces.
	m := onepass.DefaultModel(1.0 / 8192)
	gen := onepass.SyntheticClickStream(onepass.ClickStreamSpec{
		PhysBytes: 64 << 10, ChunkPhys: 8 << 10, Seed: 3,
		Users: 500, UserSkew: 1.2, URLs: 200, URLSkew: 1.3,
		Duration: time.Hour, Jitter: time.Second,
	})
	var raw []byte
	for i := 0; i < gen.NumChunks(); i++ {
		raw = append(raw, gen.ChunkBytes(i)...)
	}
	path := filepath.Join(t.TempDir(), "clicks.log")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	input, err := onepass.FileInput(path, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := onepass.Run(onepass.Job{
		Query: onepass.ClickCount(), Input: input,
		Platform: onepass.INCHash, Cluster: onepass.PaperCluster(m),
		Hints: onepass.Hints{Km: 0.1, DistinctKeys: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	fromGen, err := onepass.Run(onepass.Job{
		Query: onepass.ClickCount(), Input: gen,
		Platform: onepass.INCHash, Cluster: onepass.PaperCluster(m),
		Hints: onepass.Hints{Km: 0.1, DistinctKeys: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.OutputRecords != fromGen.OutputRecords {
		t.Fatalf("file-backed run found %d users, generator %d",
			fromFile.OutputRecords, fromGen.OutputRecords)
	}
}
